package analyze

import (
	"runtime"
	"sync"

	"kprof/internal/hw"
	"kprof/internal/sim"
	"kprof/internal/tagfile"
)

// Sharded reconstruction: the streaming reconstructor split per process
// context so GOMAXPROCS>1 speeds up a single capture.
//
// The serial reconstructor is a state machine whose expensive half is the
// per-invocation bookkeeping — node lifetimes, child-time chains, the
// per-function statistics folds. Its cheap half is the context tracking:
// which process's call stack an event applies to, decided by the '!'
// context-switch markers and orphan-exit adoption. The two halves split
// cleanly:
//
//   - A serial ROUTER runs the context-tracking half exactly as the serial
//     reconstructor does, but over name stacks only (no nodes, no stats).
//     Every decision that needs cross-context knowledge — adoption,
//     pending resolution, idle windows, loss boundaries — is made here, in
//     capture order, so it is identical to serial by construction. The
//     router labels each event with its context and appends it, plus any
//     control directives (resume credit, tentative splice, force-close),
//     to that context's LANE.
//   - Each lane then replays its op stream through the per-invocation
//     bookkeeping independently — a context's frames never interact with
//     another context's — on a pool of workers. Lanes produce private
//     per-function statistics.
//   - The MERGE folds lane statistics together. Every fold is commutative
//     and associative over integers (sums, min, max, boolean or), so the
//     merged figures are bit-identical to the serial reconstructor's no
//     matter how lanes were scheduled — the determinism the goldens
//     require.
//
// The router also computes the analysis-level accounting itself (Start,
// End, Idle, Switches, OrphanExits, Recovered, segment records), again in
// capture order. What the workers compute in parallel is exactly the part
// whose merge cannot depend on order.
//
// The sharded path is lean-only: it discards the event list and the trace
// timeline (the trace is one global interleaved sequence — sharding it
// would serialize on reassembly). Callers who need those use the serial
// Reconstructor.

// laneOp kinds. Enter/exit ops carry the decoded event; directives carry a
// time or duration in d.
const (
	opEnter = iota
	// opExit closes the named frame with mismatch recovery (force-closing
	// frames above the match); opExitStrict only closes an exact top-of-
	// stack match (the tentative-stack probe during pending resume). The
	// router guarantees the op matches, in either mode.
	opExit
	opExitStrict
	// opResume credits d of out-of-context time to every open frame (the
	// context was adopted after suspension).
	opResume
	// opSplice adds d to the top frame's childTime (completed tentative
	// roots folded in at adoption).
	opSplice
	// opDiscard drops every open frame with no statistics effect (a lost
	// switch-out, or unclosed tentative frames at adoption).
	opDiscard
	// opForceClose force-closes every open frame at time d (lossy drain
	// boundary, or idle-stack cleanup at switch-in).
	opForceClose
	// opCountOpen counts frames still open at capture end: one call each,
	// no timing.
	opCountOpen
)

// laneOp is one instruction in a lane's replay stream: an event op (enter,
// exit) references the routed event by index into the reconstructor's
// shared event store, so the op itself stays two words; a directive
// carries its time or duration in d.
type laneOp struct {
	kind int8
	idx  int32
	d    sim.Time
}

// lane is one op stream replayed sequentially by a worker. A lane carries
// one context at a time but is reused across context lifetimes (the router
// hands a recycled context its previous lane): every lifetime ends with
// the replay stack empty — discarded, force-closed, or naturally drained —
// so consecutive lifetimes replay independently on the same lane state,
// and the lane count stays at the maximum number of coexisting contexts
// instead of growing with every switch.
type lane struct {
	ops []laneOp
}

func (l *lane) push(kind int8, idx int32) {
	l.ops = append(l.ops, laneOp{kind: kind, idx: idx})
}
func (l *lane) ctl(kind int8, d sim.Time) {
	l.ops = append(l.ops, laneOp{kind: kind, d: d})
}

// rstack is the router's view of one context: the open frame names (for
// exit matching) and start times (for the interval arithmetic the serial
// path reads off its nodes).
type rstack struct {
	ln          *lane
	names       []string
	starts      []sim.Time
	doneElapsed sim.Time
	suspendedAt sim.Time
}

// ShardedReconstructor is the parallel counterpart of Reconstructor: the
// same Push/PushBatch/EndSegment/Finish surface, byte-identical lean
// results, with the per-invocation bookkeeping fanned out over worker
// goroutines at Finish. See the package comment at the top of this file
// for the split.
type ShardedReconstructor struct {
	dec     *Decoder
	workers int

	emitFn func(Event)

	// Router state, mirroring reconstructor's context machine.
	haveStart    bool
	start, end   sim.Time
	lastSwitchIn sim.Time

	cur       *rstack
	suspended []*rstack
	pending   bool

	idleOpen  bool
	idleStart sim.Time
	idleIntr  sim.Time
	idle      rstack

	idleTotal   sim.Time
	switches    int
	orphanExits int
	recovered   int

	lanes []*lane
	free  []*rstack
	// evs stores each routed enter/exit event once; lane ops reference it
	// by index. This is the sharded path's memory trade: the serial lean
	// reconstructor never materializes the event stream, the sharded one
	// buffers it until Finish fans the lanes out.
	evs []Event

	// Router-attributed statistics (the context-switch function's calls,
	// orphan-exit calls, inline marks): folded as one more lane at merge.
	ownFns map[string]statDelta

	segments   []SegmentInfo
	segStart   int
	segCorrupt int

	finished bool
}

// statDelta is the router's own per-function contribution.
type statDelta struct {
	calls     int
	inlines   int
	ctxSwitch bool
}

// NewShardedReconstructor returns a sharded streaming reconstructor.
// workers <= 0 selects GOMAXPROCS. The sharded path is lean by definition
// (no event list, no trace timeline); opts selects the decode repair
// exactly as for NewReconstructor, and its Discard fields are ignored.
func NewShardedReconstructor(cfg hw.Config, tags *tagfile.File, opts ReconstructOptions, workers int) *ShardedReconstructor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sr := &ShardedReconstructor{
		dec:     NewRepairingDecoder(cfg, tags, opts.Repair),
		workers: workers,
		ownFns:  make(map[string]statDelta, 16),
	}
	sr.emitFn = sr.route
	return sr
}

// Push decodes one raw record and routes the resulting events.
func (sr *ShardedReconstructor) Push(r hw.Record) {
	if sr.finished {
		panic("analyze: Push after Finish")
	}
	sr.dec.Push(r, sr.emitFn)
}

// PushBatch decodes a whole bank at once, exactly as Reconstructor.PushBatch.
func (sr *ShardedReconstructor) PushBatch(rs []hw.Record) {
	if sr.finished {
		panic("analyze: PushBatch after Finish")
	}
	sr.dec.PushBatch(rs, sr.emitFn)
}

func (sr *ShardedReconstructor) newRstack() *rstack {
	if n := len(sr.free); n > 0 {
		st := sr.free[n-1]
		sr.free = sr.free[:n-1]
		return st
	}
	return &rstack{}
}

func (sr *ShardedReconstructor) freeRstack(st *rstack) {
	for i := range st.names {
		st.names[i] = ""
	}
	st.names = st.names[:0]
	st.starts = st.starts[:0]
	// st.ln stays: the next context lifetime reusing this rstack appends
	// to the same lane (see lane).
	st.doneElapsed = 0
	st.suspendedAt = 0
	sr.free = append(sr.free, st)
}

// laneOf returns st's lane, creating it on first use. A context that never
// receives an op never costs a lane.
func (sr *ShardedReconstructor) laneOf(st *rstack) *lane {
	if st.ln == nil {
		st.ln = &lane{}
		sr.lanes = append(sr.lanes, st.ln)
	}
	return st.ln
}

func (sr *ShardedReconstructor) own(name string, f func(*statDelta)) {
	d := sr.ownFns[name]
	f(&d)
	sr.ownFns[name] = d
}

// route is the router's step function: the serial reconstructor.step's
// context decisions over name stacks, emitting lane ops instead of touching
// nodes.
func (sr *ShardedReconstructor) route(ev Event) {
	if !sr.haveStart {
		sr.start, sr.lastSwitchIn, sr.haveStart = ev.Time, ev.Time, true
	}
	sr.end = ev.Time
	switch {
	case ev.Kind == Unknown:
		return
	case ev.CtxSwitch && ev.Kind == Entry:
		sr.routeSwitchOut(ev)
	case ev.CtxSwitch && ev.Kind == Exit:
		sr.routeSwitchIn(ev)
	case ev.Kind == Inline:
		sr.routeInline(ev)
	case ev.Kind == Entry:
		sr.routeEnter(ev)
	case ev.Kind == Exit:
		sr.routeExit(ev)
	}
}

func (sr *ShardedReconstructor) routeSwitchOut(ev Event) {
	sr.switches++
	sr.own(ev.Name, func(d *statDelta) { d.calls++; d.ctxSwitch = true })
	if sr.pending {
		sr.pending = false
		if sr.cur == nil {
			sr.cur = sr.newRstack()
		}
	}
	if sr.cur != nil {
		if len(sr.cur.names) > 0 {
			sr.cur.suspendedAt = ev.Time
			sr.suspended = append(sr.suspended, sr.cur)
		} else {
			sr.freeRstack(sr.cur)
		}
		sr.cur = nil
	}
	sr.idleOpen = true
	sr.idleStart = ev.Time
	sr.idleIntr = 0
}

func (sr *ShardedReconstructor) routeSwitchIn(ev Event) {
	if sr.idleOpen {
		idle := ev.Time - sr.idleStart - sr.idleIntr
		if idle < 0 {
			idle = 0
		}
		sr.idleTotal += idle
		sr.idleOpen = false
	}
	if n := len(sr.idle.names); n > 0 {
		// Interrupt frames never closed in the idle loop: force-closed as
		// recovered, as the serial path's closeAll does.
		sr.recovered += n
		sr.idle.names = sr.idle.names[:0]
		sr.idle.starts = sr.idle.starts[:0]
		sr.laneOf(&sr.idle).ctl(opForceClose, ev.Time)
	}
	sr.pending = true
	if sr.cur != nil {
		// Lost switch-out: the stack was never parked; its frames drop
		// silently (no statistics), exactly as serial frees them.
		if len(sr.cur.names) > 0 {
			sr.laneOf(sr.cur).ctl(opDiscard, 0)
		}
		sr.freeRstack(sr.cur)
		sr.cur = nil
	}
	sr.lastSwitchIn = ev.Time
}

func (sr *ShardedReconstructor) routeInline(ev Event) {
	// contextStack's side effect: outside idle a nil current materializes.
	if !sr.idleOpen && sr.cur == nil {
		sr.cur = sr.newRstack()
	}
	sr.own(ev.Name, func(d *statDelta) { d.inlines++ })
}

func (sr *ShardedReconstructor) routeEnter(ev Event) {
	var st *rstack
	switch {
	case sr.pending:
		if sr.cur == nil {
			sr.cur = sr.newRstack()
		}
		st = sr.cur
	case sr.idleOpen:
		st = &sr.idle
	default:
		if sr.cur == nil {
			sr.cur = sr.newRstack()
		}
		st = sr.cur
	}
	st.names = append(st.names, ev.Name)
	st.starts = append(st.starts, ev.Time)
	sr.laneOf(st).push(opEnter, sr.addEvent(ev))
}

// addEvent stores one routed event in the shared store, returning its index
// for lane ops.
func (sr *ShardedReconstructor) addEvent(ev Event) int32 {
	sr.evs = append(sr.evs, ev)
	return int32(len(sr.evs) - 1)
}

// closeOnRouter mirrors reconstructor.closeOn over the router's name
// stacks: pops the matched frame (and everything above it when recover is
// set), maintaining doneElapsed, the recovered count and — for the idle
// stack — the idle-interrupt accounting. Reports whether the exit matched.
func (sr *ShardedReconstructor) closeOnRouter(st *rstack, ev Event, recover bool) bool {
	idx := -1
	for i := len(st.names) - 1; i >= 0; i-- {
		if st.names[i] == ev.Name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	if !recover && idx != len(st.names)-1 {
		return false
	}
	sr.recovered += len(st.names) - 1 - idx
	start := st.starts[idx]
	st.names = st.names[:idx]
	st.starts = st.starts[:idx]
	if idx == 0 {
		// Root closed: its in-context elapsed feeds a potential adoption
		// splice. Frames on a tentative stack are never suspended, so
		// elapsed is exactly end minus start.
		st.doneElapsed += ev.Time - start
	}
	if st == &sr.idle && idx == 0 && sr.idleOpen {
		sr.idleIntr += ev.Time - start
	}
	kind := int8(opExit)
	if !recover {
		kind = opExitStrict
	}
	sr.laneOf(st).push(kind, sr.addEvent(ev))
	return true
}

func (sr *ShardedReconstructor) routeExit(ev Event) {
	if sr.idleOpen {
		if sr.closeOnRouter(&sr.idle, ev, true) {
			return
		}
		sr.orphanExits++
		return
	}
	if sr.pending {
		if sr.cur != nil && sr.closeOnRouter(sr.cur, ev, false) {
			return
		}
		for i, st := range sr.suspended {
			if len(st.names) > 0 && st.names[len(st.names)-1] == ev.Name {
				sr.adoptRouter(i, ev)
				return
			}
		}
		sr.orphanExits++
		sr.own(ev.Name, func(d *statDelta) { d.calls++ })
		sr.pending = false
		if sr.cur == nil {
			sr.cur = sr.newRstack()
		}
		return
	}
	if sr.cur == nil {
		sr.cur = sr.newRstack()
	}
	if sr.closeOnRouter(sr.cur, ev, true) {
		return
	}
	sr.orphanExits++
}

func (sr *ShardedReconstructor) adoptRouter(i int, ev Event) {
	st := sr.suspended[i]
	copy(sr.suspended[i:], sr.suspended[i+1:])
	sr.suspended[len(sr.suspended)-1] = nil
	sr.suspended = sr.suspended[:len(sr.suspended)-1]
	ln := sr.laneOf(st)
	ln.ctl(opResume, sr.lastSwitchIn-st.suspendedAt)
	if sr.cur != nil {
		if sr.cur.doneElapsed != 0 {
			ln.ctl(opSplice, sr.cur.doneElapsed)
		}
		if n := len(sr.cur.names); n > 0 {
			sr.recovered += n
			sr.laneOf(sr.cur).ctl(opDiscard, 0)
		}
		sr.freeRstack(sr.cur)
	}
	sr.cur = st
	sr.pending = false
	sr.closeOnRouter(st, ev, true)
}

// EndSegment marks a drain boundary, exactly as Reconstructor.EndSegment:
// a lossy boundary force-closes every open frame in every context.
func (sr *ShardedReconstructor) EndSegment(dropped uint64, overflowed bool) {
	if sr.finished {
		panic("analyze: EndSegment after Finish")
	}
	seg := SegmentInfo{
		Index:      len(sr.segments),
		Records:    sr.dec.records - sr.segStart,
		Dropped:    dropped,
		Overflowed: overflowed,
		Corrupt:    sr.dec.corrupt - sr.segCorrupt,
		End:        sr.end,
	}
	if dropped > 0 {
		seg.ForceClosed = sr.lossBoundaryRouter()
	}
	sr.segments = append(sr.segments, seg)
	sr.segStart = sr.dec.records
	sr.segCorrupt = sr.dec.corrupt
}

func (sr *ShardedReconstructor) lossBoundaryRouter() int {
	at := sr.end
	closed := 0
	if sr.idleOpen {
		idle := at - sr.idleStart - sr.idleIntr
		if idle > 0 {
			sr.idleTotal += idle
		}
		sr.idleOpen = false
	}
	drain := func(st *rstack) {
		if n := len(st.names); n > 0 {
			closed += n
			st.names = st.names[:0]
			st.starts = st.starts[:0]
			sr.laneOf(st).ctl(opForceClose, at)
		}
	}
	drain(&sr.idle)
	if sr.cur != nil {
		drain(sr.cur)
		sr.freeRstack(sr.cur)
		sr.cur = nil
	}
	for i, st := range sr.suspended {
		drain(st)
		sr.freeRstack(st)
		sr.suspended[i] = nil
	}
	sr.suspended = sr.suspended[:0]
	sr.pending = false
	sr.recovered += closed
	return closed
}

// Finish drains the decoder, replays every lane on the worker pool, merges
// the per-function statistics and returns the Analysis — field for field
// what the serial lean Reconstructor produces for the same records.
func (sr *ShardedReconstructor) Finish(overflowed bool, dropped uint64) *Analysis {
	if sr.finished {
		panic("analyze: Finish called twice")
	}
	sr.finished = true
	sr.dec.Flush(sr.emitFn)

	if sr.idleOpen {
		idle := sr.end - sr.idleStart - sr.idleIntr
		if idle > 0 {
			sr.idleTotal += idle
		}
	}
	countOpen := func(st *rstack) {
		if st == nil || len(st.names) == 0 {
			return
		}
		sr.laneOf(st).ctl(opCountOpen, 0)
	}
	countOpen(sr.cur)
	countOpen(&sr.idle)
	for _, st := range sr.suspended {
		countOpen(st)
	}

	results := sr.runLanes()

	a := &Analysis{
		Start:       sr.start,
		End:         sr.end,
		Idle:        sr.idleTotal,
		Switches:    sr.switches,
		OrphanExits: sr.orphanExits,
		Recovered:   sr.recovered,
		Segments:    sr.segments,
		fns:         make(map[string]*FnStat, fnStatArenaCap),
	}
	mergeInto(a.fns, sr.ownFns, results)

	stats := sr.dec.Stats()
	stats.Overflowed = overflowed
	stats.Dropped = dropped
	for _, seg := range a.Segments {
		stats.Dropped += seg.Dropped
		if seg.Overflowed {
			stats.Overflowed = true
		}
	}
	a.Stats = stats
	return a
}

// runLanes replays every lane, fanning out over the worker pool when it is
// worth it.
func (sr *ShardedReconstructor) runLanes() []map[string]*FnStat {
	results := make([]map[string]*FnStat, len(sr.lanes))
	workers := sr.workers
	if workers > len(sr.lanes) {
		workers = len(sr.lanes)
	}
	if workers <= 1 {
		for i, ln := range sr.lanes {
			results[i] = replayLane(ln, sr.evs)
		}
		return results
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = replayLane(sr.lanes[i], sr.evs)
			}
		}()
	}
	for i := range sr.lanes {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

// laneNode is one open invocation during lane replay: the fields of Node
// the statistics folds read.
type laneNode struct {
	name         string
	fn           int32
	start        sim.Time
	outOfContext sim.Time
	childTime    sim.Time
}

func (n *laneNode) elapsed(end sim.Time) sim.Time { return end - n.start - n.outOfContext }

// laneState is the per-invocation bookkeeping for one context, private to
// its worker.
type laneState struct {
	open  []laneNode
	fns   map[string]*FnStat
	arena []FnStat
	byIdx []*FnStat
}

func (ls *laneState) stat(name string, idx int32) *FnStat {
	if idx > 0 {
		if int(idx) <= len(ls.byIdx) {
			if s := ls.byIdx[idx-1]; s != nil {
				return s
			}
		} else {
			size := int(idx) + 16
			if size < fnStatArenaCap {
				size = fnStatArenaCap
			}
			grown := make([]*FnStat, size)
			copy(grown, ls.byIdx)
			ls.byIdx = grown
		}
	}
	s, ok := ls.fns[name]
	if !ok {
		if ls.arena == nil {
			ls.arena = make([]FnStat, 0, fnStatArenaCap)
		}
		if len(ls.arena) < cap(ls.arena) {
			ls.arena = append(ls.arena, FnStat{Name: name, Min: 1 << 62})
			s = &ls.arena[len(ls.arena)-1]
		} else {
			s = &FnStat{Name: name, Min: 1 << 62}
		}
		ls.fns[name] = s
	}
	if idx > 0 {
		ls.byIdx[idx-1] = s
	}
	return s
}

// fold is reconstructor.record over a lane node.
func (ls *laneState) fold(n *laneNode, end sim.Time, complete bool) {
	s := ls.stat(n.name, n.fn)
	s.Calls++
	if !complete {
		return
	}
	s.TimedCalls++
	el := n.elapsed(end)
	s.Elapsed += el
	net := el - n.childTime
	s.Net += net
	if net > s.Max {
		s.Max = net
	}
	if net < s.Min {
		s.Min = net
	}
}

// replayLane runs one context's op stream through the bookkeeping. The
// router already made every matching decision over the same name stack, so
// a non-matching exit here is a desync bug, not a capture condition.
func replayLane(ln *lane, evs []Event) map[string]*FnStat {
	ls := &laneState{fns: make(map[string]*FnStat, 32)}
	for i := range ln.ops {
		op := &ln.ops[i]
		switch op.kind {
		case opEnter:
			ev := &evs[op.idx]
			ls.open = append(ls.open, laneNode{name: ev.Name, fn: ev.fnIdx, start: ev.Time})
		case opExit, opExitStrict:
			ev := &evs[op.idx]
			idx := -1
			for i := len(ls.open) - 1; i >= 0; i-- {
				if ls.open[i].name == ev.Name {
					idx = i
					break
				}
			}
			if idx < 0 || (op.kind == opExitStrict && idx != len(ls.open)-1) {
				panic("analyze: sharded lane desynced from router")
			}
			for len(ls.open)-1 > idx {
				top := &ls.open[len(ls.open)-1]
				ls.fold(top, ev.Time, false)
				el := top.elapsed(ev.Time)
				ls.open = ls.open[:len(ls.open)-1]
				ls.open[len(ls.open)-1].childTime += el
			}
			n := ls.open[idx]
			ls.open = ls.open[:idx]
			if len(ls.open) > 0 {
				ls.open[len(ls.open)-1].childTime += n.elapsed(ev.Time)
			}
			ls.fold(&n, ev.Time, true)
		case opResume:
			for i := range ls.open {
				ls.open[i].outOfContext += op.d
			}
		case opSplice:
			if len(ls.open) > 0 {
				ls.open[len(ls.open)-1].childTime += op.d
			}
		case opDiscard:
			ls.open = ls.open[:0]
		case opForceClose:
			for len(ls.open) > 0 {
				top := &ls.open[len(ls.open)-1]
				ls.fold(top, op.d, false)
				el := top.elapsed(op.d)
				ls.open = ls.open[:len(ls.open)-1]
				if len(ls.open) > 0 {
					ls.open[len(ls.open)-1].childTime += el
				}
			}
		case opCountOpen:
			for i := len(ls.open) - 1; i >= 0; i-- {
				ls.stat(ls.open[i].name, ls.open[i].fn).Calls++
			}
			ls.open = ls.open[:0]
		}
	}
	return ls.fns
}

// mergeInto folds the router's own contributions and every lane's private
// statistics into dst. All folds are order-independent (integer sums, min,
// max, boolean or), which is what makes the sharded result identical to
// serial whatever the worker scheduling did.
func mergeInto(dst map[string]*FnStat, own map[string]statDelta, lanes []map[string]*FnStat) {
	get := func(name string) *FnStat {
		s, ok := dst[name]
		if !ok {
			s = &FnStat{Name: name, Min: 1 << 62}
			dst[name] = s
		}
		return s
	}
	for name, d := range own {
		s := get(name)
		s.Calls += d.calls
		s.Inlines += d.inlines
		if d.ctxSwitch {
			s.CtxSwitch = true
		}
	}
	for _, fns := range lanes {
		for name, ls := range fns {
			s := get(name)
			s.Calls += ls.Calls
			s.TimedCalls += ls.TimedCalls
			s.Elapsed += ls.Elapsed
			s.Net += ls.Net
			if ls.Max > s.Max {
				s.Max = ls.Max
			}
			if ls.Min < s.Min {
				s.Min = ls.Min
			}
			s.Inlines += ls.Inlines
			if ls.CtxSwitch {
				s.CtxSwitch = true
			}
		}
	}
}
