package analyze

import (
	"testing"

	"kprof/internal/hw"
	"kprof/internal/sim"
)

// stampsToCapture packs true event times (µs since the counter's power-on
// value) into 24-bit truncated stamps, as the card stores them.
func stampsToCapture(powerOn uint32, trueUS []uint64) hw.Capture {
	var c hw.Capture
	for i, us := range trueUS {
		c.Records = append(c.Records, hw.Record{
			Tag:   uint16(500 + (i%2)*1), // alternate a-entry / a-exit
			Stamp: (powerOn + uint32(us)) & hw.TimerMask,
		})
	}
	return c
}

// Any sequence of inter-event gaps shorter than the wrap interval decodes
// exactly, however many times the cumulative counter wraps and wherever
// the counter started at power-on.
func TestDecodeUnwrapExactAcrossWraps(t *testing.T) {
	const wrap = uint64(hw.TimerWrap) // 2^24 µs ≈ 16.7 s
	gaps := []uint64{0, 1, wrap - 1, 13, wrap - 1, wrap - 1, 5_000_000, wrap - 1, 2}
	for _, powerOn := range []uint32{0, 1, hw.TimerMask, 0x7fffff, 0xabcdef} {
		trueUS := make([]uint64, 0, len(gaps)+1)
		var now uint64
		trueUS = append(trueUS, 0)
		for _, g := range gaps {
			now += g
			trueUS = append(trueUS, now)
		}
		// The cumulative span is several wraps long.
		if now < 3*wrap {
			t.Fatal("test series does not wrap enough")
		}
		events, _ := Decode(stampsToCapture(powerOn, trueUS), mustTags(t))
		for i, ev := range events {
			want := sim.Time(trueUS[i]) * sim.Microsecond
			if ev.Time != want {
				t.Fatalf("power-on %#x: event %d at %v, want %v", powerOn, i, ev.Time, want)
			}
		}
	}
}

// A gap of exactly one wrap (or more) aliases: the decoder sees only the
// remainder, exactly as the real hardware loses the information.
func TestDecodeUnwrapAliasing(t *testing.T) {
	const wrap = uint64(hw.TimerWrap)
	events, _ := Decode(stampsToCapture(0, []uint64{0, wrap + 7}), mustTags(t))
	if want := 7 * sim.Microsecond; events[1].Time != want {
		t.Fatalf("aliased gap decoded to %v, want %v", events[1].Time, want)
	}
	events, _ = Decode(stampsToCapture(0, []uint64{0, 5 * wrap}), mustTags(t))
	if events[1].Time != 0 {
		t.Fatalf("whole-wrap gap decoded to %v, want 0", events[1].Time)
	}
}

// The out-of-order guard: a stamp that regresses must decode as a forward
// interval (a near-wrap gap), never as negative time.
func TestDecodeOutOfOrderGuard(t *testing.T) {
	c := capOf([2]uint32{500, 100}, [2]uint32{501, 99})
	events, _ := Decode(c, mustTags(t))
	want := sim.Time(hw.TimerWrap-1) * sim.Microsecond
	if events[1].Time != want {
		t.Fatalf("regressed stamp decoded to %v, want %v", events[1].Time, want)
	}
}

// FuzzDecodeUnwrap feeds arbitrary stamp streams through the decoder. For
// every input: the timeline starts at zero, never decreases, steps less
// than one wrap per record, and the streaming decoder agrees with the
// batch path record for record.
func FuzzDecodeUnwrap(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0xff, 0xff, 0xff})
	f.Add([]byte{0x12, 0x34, 0x56, 0x11, 0x22, 0x33, 0x99, 0x88, 0x77})
	f.Add([]byte{0xff, 0xff, 0xff, 0, 0, 1, 0xff, 0xff, 0xfe})
	f.Fuzz(func(t *testing.T, data []byte) {
		tags := mustTags(t)
		var c hw.Capture
		for i := 0; i+3 <= len(data); i += 3 {
			stamp := uint32(data[i]) | uint32(data[i+1])<<8 | uint32(data[i+2])<<16
			c.Records = append(c.Records, hw.Record{Tag: uint16(500 + i%110), Stamp: stamp & hw.TimerMask})
		}
		events, stats := Decode(c, tags)
		if stats.Records != len(c.Records) {
			t.Fatalf("stats.Records = %d, want %d", stats.Records, len(c.Records))
		}
		dec := NewDecoder(c.ClockConfig(), tags)
		wrapStep := sim.Time(hw.TimerWrap) * sim.Microsecond
		var prev sim.Time
		for i, ev := range events {
			if i == 0 && ev.Time != 0 {
				t.Fatalf("timeline starts at %v", ev.Time)
			}
			if ev.Time < prev {
				t.Fatalf("record %d: time went backwards (%v after %v)", i, ev.Time, prev)
			}
			if step := ev.Time - prev; step >= wrapStep {
				t.Fatalf("record %d: step %v exceeds the wrap interval", i, step)
			}
			if streamed := dec.Next(c.Records[i]); streamed != ev {
				t.Fatalf("record %d: streaming decode %+v != batch %+v", i, streamed, ev)
			}
			prev = ev.Time
		}
	})
}
