package analyze

import (
	"fmt"
	"io"
	"strings"

	"kprof/internal/sim"
)

// Histogram of a function's per-call elapsed times — one of the "more
// useful ways" of processing the raw data the paper's future-work section
// anticipates.
type Histogram struct {
	Name    string
	Buckets []Bucket
	Total   int
}

// Bucket is one histogram bin: [Lo, Hi) microseconds.
type Bucket struct {
	Lo, Hi sim.Time
	Count  int
}

// HistogramOf builds a log-2-bucketed histogram of every completed
// invocation of name.
func (a *Analysis) HistogramOf(name string) *Histogram {
	h := &Histogram{Name: name}
	var durations []sim.Time
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Name == name && n.Complete {
			durations = append(durations, n.Elapsed())
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, it := range a.Items {
		if it.Kind == TraceExit && it.Node != nil && it.Depth == 0 {
			walk(it.Node)
		}
	}
	if len(durations) == 0 {
		return h
	}
	// Log-2 buckets from 1 µs.
	lo := sim.Microsecond
	for {
		hi := lo * 2
		b := Bucket{Lo: lo, Hi: hi}
		for _, d := range durations {
			if d >= lo && d < hi {
				b.Count++
			}
		}
		// Include a catch-all first bucket for sub-µs calls.
		if lo == sim.Microsecond {
			for _, d := range durations {
				if d < sim.Microsecond {
					b.Count++
					b.Lo = 0
				}
			}
		}
		h.Buckets = append(h.Buckets, b)
		h.Total += b.Count
		if h.Total >= len(durations) {
			break
		}
		lo = hi
		if lo > sim.Second*16 {
			break
		}
	}
	return h
}

// Write renders the histogram as an ASCII bar chart.
func (h *Histogram) Write(w io.Writer) error {
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "%s: %d calls\n", h.Name, h.Total)
	max := 0
	for _, b := range h.Buckets {
		if b.Count > max {
			max = b.Count
		}
	}
	for _, b := range h.Buckets {
		if b.Count == 0 {
			continue
		}
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", 1+b.Count*40/max)
		}
		fmt.Fprintf(ew, "%8d-%-8d us %6d %s\n", b.Lo.Micros(), b.Hi.Micros(), b.Count, bar)
	}
	return ew.err
}

// String renders the histogram.
func (h *Histogram) String() string {
	var b strings.Builder
	_ = h.Write(&b)
	return b.String()
}
