package analyze

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"kprof/internal/sim"
)

// Call-graph extraction — "a lot of analysis can be applied to the raw
// data". The reconstructed invocation trees carry exact caller/callee
// relationships (something the paper's gprof-era comparisons could only
// estimate statistically), so the arcs here are measured, not inferred.

// Arc is one caller→callee edge.
type Arc struct {
	Caller string // "" for top-level invocations
	Callee string
	Count  int
	// Time is the callee's in-context elapsed time attributed to calls
	// from this caller.
	Time sim.Time
}

// CallGraph is the aggregated arc set of a capture.
type CallGraph struct {
	arcs     map[[2]string]*Arc
	byCallee map[string][]*Arc
	byCaller map[string][]*Arc
}

// CallGraph builds the measured call graph of the capture.
func (a *Analysis) CallGraph() *CallGraph {
	g := &CallGraph{
		arcs:     make(map[[2]string]*Arc),
		byCallee: make(map[string][]*Arc),
		byCaller: make(map[string][]*Arc),
	}
	var walk func(parent string, n *Node)
	walk = func(parent string, n *Node) {
		if n.Complete {
			g.add(parent, n.Name, n.Elapsed())
		}
		for _, c := range n.Children {
			walk(n.Name, c)
		}
	}
	for _, it := range a.Items {
		if it.Kind == TraceExit && it.Node != nil && it.Depth == 0 {
			walk("", it.Node)
		}
	}
	return g
}

func (g *CallGraph) add(caller, callee string, t sim.Time) {
	key := [2]string{caller, callee}
	arc, ok := g.arcs[key]
	if !ok {
		arc = &Arc{Caller: caller, Callee: callee}
		g.arcs[key] = arc
		g.byCallee[callee] = append(g.byCallee[callee], arc)
		g.byCaller[caller] = append(g.byCaller[caller], arc)
	}
	arc.Count++
	arc.Time += t
}

// Callers reports the arcs into callee, heaviest first.
func (g *CallGraph) Callers(callee string) []*Arc {
	out := append([]*Arc(nil), g.byCallee[callee]...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		return out[i].Caller < out[j].Caller
	})
	return out
}

// Callees reports the arcs out of caller, heaviest first.
func (g *CallGraph) Callees(caller string) []*Arc {
	out := append([]*Arc(nil), g.byCaller[caller]...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		return out[i].Callee < out[j].Callee
	})
	return out
}

// Arcs reports every edge, heaviest first.
func (g *CallGraph) Arcs() []*Arc {
	out := make([]*Arc, 0, len(g.arcs))
	for _, arc := range g.arcs {
		out = append(out, arc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		if out[i].Caller != out[j].Caller {
			return out[i].Caller < out[j].Caller
		}
		return out[i].Callee < out[j].Callee
	})
	return out
}

// WriteFunction renders one function's call-graph block: callers above,
// callees below, gprof-style.
func (g *CallGraph) WriteFunction(w io.Writer, name string) error {
	ew := &errWriter{w: w}
	callers := g.Callers(name)
	callees := g.Callees(name)
	if len(callers) == 0 && len(callees) == 0 {
		_, err := fmt.Fprintf(ew, "%s: no arcs\n", name)
		return err
	}
	for _, arc := range callers {
		from := arc.Caller
		if from == "" {
			from = "<top>"
		}
		fmt.Fprintf(ew, "    %8d calls %10d us   from %s\n", arc.Count, arc.Time.Micros(), from)
	}
	fmt.Fprintf(ew, "[%s]\n", name)
	for _, arc := range callees {
		fmt.Fprintf(ew, "    %8d calls %10d us   to   %s\n", arc.Count, arc.Time.Micros(), arc.Callee)
	}
	return ew.err
}

// Write renders the top arcs of the whole graph.
func (g *CallGraph) Write(w io.Writer, top int) error {
	ew := &errWriter{w: w}
	arcs := g.Arcs()
	if top > 0 && len(arcs) > top {
		arcs = arcs[:top]
	}
	fmt.Fprintf(ew, "%-24s %-24s %8s %12s\n", "caller", "callee", "calls", "callee us")
	for _, arc := range arcs {
		from := arc.Caller
		if from == "" {
			from = "<top>"
		}
		fmt.Fprintf(ew, "%-24s %-24s %8d %12d\n", from, arc.Callee, arc.Count, arc.Time.Micros())
	}
	return ew.err
}

// String renders the top 30 arcs.
func (g *CallGraph) String() string {
	var b strings.Builder
	_ = g.Write(&b, 30)
	return b.String()
}
