package analyze

import (
	"testing"

	"kprof/internal/hw"
	"kprof/internal/sim"
)

// pushAll streams a capture through a repairing decoder and collects the
// emitted events.
func pushAll(t *testing.T, c hw.Capture, repair RepairConfig) ([]Event, DecodeStats) {
	t.Helper()
	d := NewRepairingDecoder(c.ClockConfig(), mustTags(t), repair)
	var events []Event
	emit := func(ev Event) { events = append(events, ev) }
	for _, r := range c.Records {
		d.Push(r, emit)
	}
	d.Flush(emit)
	return events, d.Stats()
}

// On a clean stream the repairing Push path and the historical Next path
// must produce identical events — repair is a no-op when nothing is broken.
func TestRepairCleanStreamMatchesNext(t *testing.T) {
	c := capOf(
		[2]uint32{500, 10}, [2]uint32{502, 20}, [2]uint32{503, 45},
		[2]uint32{600, 50}, [2]uint32{601, 90}, [2]uint32{501, 120},
		// A genuine gap above the suspect threshold, chained by its
		// successor: arbitration accepts it untouched.
		[2]uint32{500, 120 + 6000}, [2]uint32{501, 130 + 6000},
		// A timer wrap traversed by a dense stream (small deltas across
		// the rollover itself): still clean, still must match. The leap
		// up to the wrap neighborhood is chain-accepted like the gap
		// above.
		[2]uint32{503, hw.TimerMask - 50},
		[2]uint32{500, hw.TimerMask - 5}, [2]uint32{501, 30},
	)
	want, wantStats := Decode(c, mustTags(t))
	got, gotStats := pushAll(t, c, DefaultRepair())
	if len(got) != len(want) {
		t.Fatalf("repair emitted %d events, Next %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: repair %+v, Next %+v", i, got[i], want[i])
		}
	}
	if gotStats.CorruptRecords != 0 || gotStats.RepairedTimestamps != 0 || gotStats.Resyncs != 0 {
		t.Fatalf("clean stream reported corruption: %+v", gotStats)
	}
	if wantStats.Records != gotStats.Records {
		t.Fatalf("record counts differ: %d vs %d", wantStats.Records, gotStats.Records)
	}
}

// A single glitched stamp between two mutually consistent neighbours is
// repaired by interpolation: the timeline never jumps, and the record is
// counted as corrupt + repaired.
func TestRepairGlitchedStamp(t *testing.T) {
	c := capOf(
		[2]uint32{500, 100},
		[2]uint32{502, 0x800000 | 110}, // high bit flipped: reads as a ~8.4 s jump
		[2]uint32{503, 120},
		[2]uint32{501, 130},
	)
	events, stats := pushAll(t, c, DefaultRepair())
	if len(events) != 4 {
		t.Fatalf("emitted %d events, want 4", len(events))
	}
	// The glitched record lands between its neighbours, not 8.4 s away.
	if events[1].Time <= events[0].Time || events[1].Time >= events[2].Time {
		t.Fatalf("repaired time %v not between %v and %v", events[1].Time, events[0].Time, events[2].Time)
	}
	if events[3].Time != events[0].Time+30*sim.Microsecond {
		t.Fatalf("timeline perturbed: last event at %v, want %v", events[3].Time, events[0].Time+30*sim.Microsecond)
	}
	if stats.CorruptRecords != 1 || stats.RepairedTimestamps != 1 || stats.Resyncs != 0 {
		t.Fatalf("stats %+v, want 1 corrupt, 1 repaired, 0 resyncs", stats)
	}
	// The unhardened decoder, by contrast, teleports.
	raw, _ := Decode(c, mustTags(t))
	if raw[1].Time < sim.Second {
		t.Fatalf("expected the unrepaired decode to jump, got %v", raw[1].Time)
	}
}

// A genuine long gap — successor agrees with the suspect — decodes exactly
// as without repair and is not counted corrupt.
func TestRepairAcceptsGenuineJump(t *testing.T) {
	c := capOf(
		[2]uint32{500, 100},
		[2]uint32{501, 100 + 9_000_000}, // 9 s later: implausible alone...
		[2]uint32{502, 100 + 9_000_050}, // ...but its successor chains onto it
		[2]uint32{503, 100 + 9_000_060},
	)
	want, _ := Decode(c, mustTags(t))
	got, stats := pushAll(t, c, DefaultRepair())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: repair %+v, Next %+v", i, got[i], want[i])
		}
	}
	if stats.CorruptRecords != 0 {
		t.Fatalf("genuine jump miscounted as corrupt: %+v", stats)
	}
}

// Consecutive unresolvable stamps trigger a bounded resync: the decoder
// rebases rather than zero-advancing forever.
func TestRepairBoundedResync(t *testing.T) {
	recs := capOf(
		[2]uint32{500, 100},
		// Four mutually inconsistent far-away stamps: each is at least
		// half a wrap from the trusted timebase (stamp 100) AND from its
		// predecessor, so no arbitration ever succeeds — until the
		// fourth forces the bounded resync.
		[2]uint32{502, 9_000_000},
		[2]uint32{503, 8_500_000},
		[2]uint32{501, 8_400_000},
		[2]uint32{500, 8_390_000},
		// After the resync the timeline rebases on the newest stamp and
		// continues normally.
		[2]uint32{501, 8_390_010},
	)
	events, stats := pushAll(t, recs, DefaultRepair())
	if len(events) != 6 {
		t.Fatalf("emitted %d events, want 6", len(events))
	}
	if stats.Resyncs != 1 {
		t.Fatalf("stats %+v, want exactly 1 resync", stats)
	}
	if stats.CorruptRecords != 3 || stats.RepairedTimestamps != 3 {
		t.Fatalf("stats %+v, want the 3 unresolvable stamps zero-advanced", stats)
	}
	// Post-resync delta decodes normally: 10 µs after the rebase record.
	if d := events[5].Time - events[4].Time; d != 10*sim.Microsecond {
		t.Fatalf("post-resync delta %v, want 10µs", d)
	}
	// Time never went backwards.
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatalf("time regressed at event %d: %v < %v", i, events[i].Time, events[i-1].Time)
		}
	}
}

// A small upward stamp corruption slips under the suspect threshold and is
// accepted as a plausible forward jump — but when the following good
// records reveal that the timebase overshot (they sit slightly behind it),
// the decoder rebases backward instead of reading them as a near-full
// timer wrap. The residual error stays bounded by the flip size; without
// this arm the timeline would gain a whole 2^24 µs wrap.
func TestRepairBackwardRebaseAfterOvershoot(t *testing.T) {
	c := capOf(
		[2]uint32{500, 100},
		[2]uint32{502, 110 + 2048}, // flipped bit 11: reads as a plausible +2 ms jump
		[2]uint32{503, 120},
		[2]uint32{501, 130},
	)
	events, stats := pushAll(t, c, DefaultRepair())
	if len(events) != 4 {
		t.Fatalf("emitted %d events, want 4", len(events))
	}
	// Bounded damage: the capture ends a couple of ms late, not 16.7 s.
	if events[3].Time > 10*sim.Millisecond {
		t.Fatalf("timebase overshoot compounded: capture ends at %v", events[3].Time)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatalf("time regressed at event %d: %v < %v", i, events[i].Time, events[i-1].Time)
		}
	}
	if stats.CorruptRecords != 1 || stats.RepairedTimestamps != 1 || stats.Resyncs != 0 {
		t.Fatalf("stats %+v, want 1 corrupt / 1 repaired / 0 resyncs", stats)
	}
}

// A suspect with no successor (end of stream) is zero-advanced by Flush,
// never allowed to yank the capture's end forward.
func TestRepairFlushZeroAdvances(t *testing.T) {
	c := capOf(
		[2]uint32{500, 100},
		[2]uint32{501, 110},
		[2]uint32{502, 12_000_000}, // trailing glitch, no arbiter
	)
	events, stats := pushAll(t, c, DefaultRepair())
	if len(events) != 3 {
		t.Fatalf("emitted %d events, want 3", len(events))
	}
	if events[2].Time != events[1].Time {
		t.Fatalf("trailing suspect advanced the timeline to %v", events[2].Time)
	}
	if stats.RepairedTimestamps != 1 || stats.CorruptRecords != 1 {
		t.Fatalf("stats %+v, want the trailing record repaired", stats)
	}
}

// With repair disabled, Push behaves exactly like Next even on corrupt
// streams (the historical decode, preserved for the unhardened paths).
func TestPushRepairDisabledMatchesNext(t *testing.T) {
	c := capOf(
		[2]uint32{500, 100},
		[2]uint32{502, 0x800000 | 110},
		[2]uint32{503, 120},
	)
	want, _ := Decode(c, mustTags(t))
	got, stats := pushAll(t, c, RepairConfig{})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: Push %+v, Next %+v", i, got[i], want[i])
		}
	}
	if stats.RepairedTimestamps != 0 || stats.Resyncs != 0 {
		t.Fatalf("disabled repair still repaired: %+v", stats)
	}
}

// An unresolvable tag counts the record corrupt exactly once, even when its
// stamp was also repaired.
func TestCorruptCountedOncePerRecord(t *testing.T) {
	c := capOf(
		[2]uint32{500, 100},
		[2]uint32{9999, 0x800000 | 110}, // unknown tag AND glitched stamp
		[2]uint32{503, 120},
	)
	_, stats := pushAll(t, c, DefaultRepair())
	if stats.CorruptRecords != 1 {
		t.Fatalf("double-counted a doubly-damaged record: %+v", stats)
	}
	if stats.UnknownTags != 1 || stats.RepairedTimestamps != 1 {
		t.Fatalf("stats %+v, want 1 unknown tag and 1 repaired stamp", stats)
	}
}

// The streaming Reconstructor surfaces the decoder's corruption accounting
// through DecodeStats and per-segment Corrupt counts.
func TestReconstructorCorruptAccounting(t *testing.T) {
	tags := mustTags(t)
	rc := NewReconstructor(hw.Config{}, tags, ReconstructOptions{Repair: DefaultRepair()})
	push := func(tag uint16, us uint32) { rc.Push(hw.Record{Tag: tag, Stamp: us}) }
	push(500, 10)
	push(501, 0x800000|20) // glitched
	push(502, 30)
	rc.EndSegment(0, false)
	push(503, 40)
	push(501, 50)
	rc.EndSegment(0, false)
	a := rc.Finish(false, 0)
	if a.Stats.CorruptRecords != 1 || a.Stats.RepairedTimestamps != 1 {
		t.Fatalf("stats %+v, want 1 corrupt / 1 repaired", a.Stats)
	}
	if len(a.Segments) != 2 {
		t.Fatalf("%d segments, want 2", len(a.Segments))
	}
	if a.Segments[0].Corrupt != 1 || a.Segments[1].Corrupt != 0 {
		t.Fatalf("per-segment corrupt %d/%d, want 1/0", a.Segments[0].Corrupt, a.Segments[1].Corrupt)
	}
}
