package analyze

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"kprof/internal/sim"
)

// Subsystem grouping: fold the per-function statistics into kernel
// subsystems ("groupings of functions into separate subsystems", from the
// paper's future-work list). The grouping is a name→subsystem map, usually
// derived from the kernel's module table.
type GroupStat struct {
	Name   string
	Fns    int
	Calls  int
	Net    sim.Time
	PctNet float64
}

// Groups aggregates function stats by the given name→group mapping;
// functions absent from the map fall into "other".
func (a *Analysis) Groups(groupOf map[string]string) []*GroupStat {
	agg := make(map[string]*GroupStat)
	run := a.RunTime()
	for _, s := range a.Functions() {
		if s.CtxSwitch {
			continue // idle is accounted in the header, not a subsystem
		}
		g := groupOf[s.Name]
		if g == "" {
			g = "other"
		}
		gs, ok := agg[g]
		if !ok {
			gs = &GroupStat{Name: g}
			agg[g] = gs
		}
		gs.Fns++
		gs.Calls += s.Calls
		gs.Net += s.Net
	}
	out := make([]*GroupStat, 0, len(agg))
	for _, gs := range agg {
		if run > 0 {
			gs.PctNet = 100 * float64(gs.Net) / float64(run)
		}
		out = append(out, gs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Net != out[j].Net {
			return out[i].Net > out[j].Net
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// WriteGroups renders the subsystem breakdown.
func WriteGroups(w io.Writer, groups []*GroupStat) error {
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "%-16s %6s %8s %10s %7s\n", "subsystem", "fns", "calls", "net us", "% net")
	for _, g := range groups {
		fmt.Fprintf(ew, "%-16s %6d %8d %10d %6.2f%%\n", g.Name, g.Fns, g.Calls, g.Net.Micros(), g.PctNet)
	}
	return ew.err
}

// GroupsString renders the subsystem breakdown to a string.
func GroupsString(groups []*GroupStat) string {
	var b strings.Builder
	_ = WriteGroups(&b, groups)
	return b.String()
}
