package analyze

import (
	"kprof/internal/hw"
	"kprof/internal/sim"
	"kprof/internal/tagfile"
)

// ReconstructOptions trims what a streaming reconstruction retains and
// selects the decode hardening. The per-function statistics, idle
// accounting and capture-quality counters are always kept; the bulky
// per-event artifacts are optional.
type ReconstructOptions struct {
	// DiscardEvents drops the decoded event list (Analysis.Events stays
	// empty).
	DiscardEvents bool
	// DiscardTrace drops the trace timeline (Analysis.Items stays empty;
	// WriteTrace renders nothing).
	DiscardTrace bool
	// Repair configures timestamp-monotonicity repair. The zero value is
	// off (the historical decoder); the production pipeline
	// (core.Session, the kprof facade) passes DefaultRepair().
	Repair RepairConfig
}

// Reconstructor couples the streaming Decoder to the reconstruction state
// machine, so raw card records can be fed one at a time — from the card's
// RAM in place, or from a capture file as it is read — without ever
// materializing the event list. A sweep worker pushes the 16384 records,
// drops the card, and keeps only the finished per-function statistics.
type Reconstructor struct {
	dec        *Decoder
	rec        *reconstructor
	keepEvents bool
	finished   bool
	// emitFn is the emit callback bound once at construction, so the
	// per-record Push never materializes a method value.
	emitFn func(Event)
	// segStart/segCorrupt are the decoder's record and corrupt counts at
	// the current segment's first record, so EndSegment can size the
	// segment and attribute its corruption.
	segStart   int
	segCorrupt int
}

// NewReconstructor returns a streaming reconstructor for records captured
// under the given clock configuration (zero values select the prototype
// card's 1 MHz, 24 bits).
func NewReconstructor(cfg hw.Config, tags *tagfile.File, opts ReconstructOptions) *Reconstructor {
	a := &Analysis{fns: make(map[string]*FnStat, fnStatArenaCap)}
	rc := &Reconstructor{
		dec:        NewRepairingDecoder(cfg, tags, opts.Repair),
		rec:        &reconstructor{a: a, idleStack: &stack{}, keepItems: !opts.DiscardTrace},
		keepEvents: !opts.DiscardEvents,
	}
	rc.emitFn = rc.emit
	return rc
}

// Push decodes one raw record and advances the reconstruction. Under repair
// a suspect record is buffered inside the decoder until its successor
// arbitrates, so a Push may advance the reconstruction by zero, one or two
// events.
func (rc *Reconstructor) Push(r hw.Record) {
	if rc.finished {
		panic("analyze: Push after Finish")
	}
	rc.dec.Push(r, rc.emitFn)
}

func (rc *Reconstructor) emit(ev Event) { rc.rec.feed(ev, rc.keepEvents) }

// PushBatch decodes a whole drained bank at once. The drain loop hands a
// bank's records in a single call, so the timestamp unwrap runs as one
// batch scan instead of a per-record call chain; the emitted event stream
// is identical to pushing the records one at a time.
//
// The common-case loop is Decoder.PushBatch's fused into this package's
// consumer: the decoded event goes straight to the reconstruction step
// with one direct call, not through the per-record emit closure. Repair
// arbitration (a pending suspect stamp) drops to the record-at-a-time
// path until the decoder is back in steady state.
func (rc *Reconstructor) PushBatch(rs []hw.Record) {
	if rc.finished {
		panic("analyze: PushBatch after Finish")
	}
	d, rec, keep := rc.dec, rc.rec, rc.keepEvents
	i := 0
	if d.first && len(rs) > 0 {
		d.records++
		d.first = false
		d.last = rs[0].Stamp
		rec.feed(d.event(rs[0], d.now, false), keep)
		i = 1
	}
	for i < len(rs) {
		if !d.hasPending {
			for ; i < len(rs); i++ {
				r := rs[i]
				delta := (r.Stamp - d.last) & d.mask
				if d.repair.Enabled && delta >= d.suspect {
					break
				}
				d.records++
				d.now += sim.Time(delta) * d.tick
				d.last = r.Stamp
				rec.feed(d.event(r, d.now, false), keep)
			}
			if i >= len(rs) {
				return
			}
		}
		d.Push(rs[i], rc.emitFn)
		i++
	}
}

// SnapshotCounters is the whole-capture running state of a streaming
// reconstruction, observable mid-stream (between pushes or at segment
// boundaries). All values are cumulative since the first record, so a
// consumer slicing a continuous capture into per-segment contributions
// takes exact integer differences between successive snapshots — the
// deltas sum to the final Analysis totals bit for bit, because they are
// the same counters Finish publishes.
type SnapshotCounters struct {
	// Records is the decoded record count so far.
	Records int
	// Start and End bound the reconstructed timeline so far; Elapsed so
	// far is End - Start.
	Start, End sim.Time
	// Idle is accumulated time inside the context switcher; Switches
	// counts entries to it.
	Idle     sim.Time
	Switches int
}

// Snapshot reports the reconstruction's running counters and, when visit
// is non-nil, visits every function's live statistics. The *FnStat values
// are the reconstruction's own working state: visitors must not mutate or
// retain them, and mid-stream a function with open frames shows only the
// net time of its completed calls so far. Visit order is unspecified
// (consumers needing determinism must key on FnStat.Name); the counters
// themselves are exact at any boundary. The fleet ingest pipeline is the
// intended consumer: it diffs snapshots taken at segment boundaries into
// integer per-segment samples.
func (rc *Reconstructor) Snapshot(visit func(*FnStat)) SnapshotCounters {
	if visit != nil {
		for _, f := range rc.rec.a.fns {
			visit(f)
		}
	}
	a := rc.rec.a
	return SnapshotCounters{
		Records:  rc.dec.records,
		Start:    a.Start,
		End:      a.End,
		Idle:     a.Idle,
		Switches: a.Switches,
	}
}

// EndSegment marks a drain boundary: the records pushed since the previous
// boundary (or the start) form one segment that lost dropped strobes before
// its drain completed. The timestamp-unwrap state always carries across the
// boundary — the card's counter free-runs through a drain — so a clean
// boundary (dropped == 0) is a pure continuation of the timeline. A lossy
// boundary additionally force-closes every open frame (counted in
// Recovered and the segment's ForceClosed) so that frames spanning the
// loss are never mis-nested against post-loss events.
func (rc *Reconstructor) EndSegment(dropped uint64, overflowed bool) {
	if rc.finished {
		panic("analyze: EndSegment after Finish")
	}
	seg := SegmentInfo{
		Index:      len(rc.rec.a.Segments),
		Records:    rc.dec.records - rc.segStart,
		Dropped:    dropped,
		Overflowed: overflowed,
		Corrupt:    rc.dec.corrupt - rc.segCorrupt,
		End:        rc.rec.a.End,
	}
	if dropped > 0 {
		seg.ForceClosed = rc.rec.lossBoundary()
	}
	rc.rec.a.Segments = append(rc.rec.a.Segments, seg)
	rc.segStart = rc.dec.records
	rc.segCorrupt = rc.dec.corrupt
}

// Finish closes the books and returns the Analysis. Overflowed and dropped
// describe any trailing records not covered by an EndSegment call; for a
// fully segmented capture pass (false, 0). Per-segment losses recorded by
// EndSegment are folded into the capture-quality stats.
func (rc *Reconstructor) Finish(overflowed bool, dropped uint64) *Analysis {
	if rc.finished {
		panic("analyze: Finish called twice")
	}
	rc.finished = true
	rc.dec.Flush(rc.emitFn)
	rc.rec.finish()
	stats := rc.dec.Stats()
	stats.Overflowed = overflowed
	stats.Dropped = dropped
	for _, seg := range rc.rec.a.Segments {
		stats.Dropped += seg.Dropped
		if seg.Overflowed {
			stats.Overflowed = true
		}
	}
	rc.rec.a.Stats = stats
	return rc.rec.a
}

// Stitch reconstructs a segmented capture produced by the drain-and-stitch
// pipeline: each hw.Capture is one drained slice of a single continuous
// run, in drain order, with its Dropped/Overflowed fields describing the
// loss (if any) at its end boundary. The segments decode as one continuous
// timeline; lossy boundaries are force-closed and reported per segment.
func Stitch(segs []hw.Capture, tags *tagfile.File, opts ReconstructOptions) *Analysis {
	cfg := hw.Config{}
	if len(segs) > 0 {
		cfg = segs[0].ClockConfig()
	}
	rc := NewReconstructor(cfg, tags, opts)
	for _, seg := range segs {
		rc.PushBatch(seg.Records)
		rc.EndSegment(seg.Dropped, seg.Overflowed)
	}
	return rc.Finish(false, 0)
}

// ReconstructCapture runs the streaming reconstruction over one single-
// readout capture. It is the hardened equivalent of Decode followed by
// Reconstruct: pass opts.Repair = DefaultRepair() to survive corrupted
// stamps, or the zero options for the historical batch behaviour.
func ReconstructCapture(c hw.Capture, tags *tagfile.File, opts ReconstructOptions) *Analysis {
	rc := NewReconstructor(c.ClockConfig(), tags, opts)
	rc.PushBatch(c.Records)
	return rc.Finish(c.Overflowed, c.Dropped)
}
