package analyze

import (
	"kprof/internal/hw"
	"kprof/internal/tagfile"
)

// ReconstructOptions trims what a streaming reconstruction retains. The
// per-function statistics, idle accounting and capture-quality counters are
// always kept; the bulky per-event artifacts are optional.
type ReconstructOptions struct {
	// DiscardEvents drops the decoded event list (Analysis.Events stays
	// empty).
	DiscardEvents bool
	// DiscardTrace drops the trace timeline (Analysis.Items stays empty;
	// WriteTrace renders nothing).
	DiscardTrace bool
}

// Reconstructor couples the streaming Decoder to the reconstruction state
// machine, so raw card records can be fed one at a time — from the card's
// RAM in place, or from a capture file as it is read — without ever
// materializing the event list. A sweep worker pushes the 16384 records,
// drops the card, and keeps only the finished per-function statistics.
type Reconstructor struct {
	dec        *Decoder
	rec        *reconstructor
	keepEvents bool
	finished   bool
}

// NewReconstructor returns a streaming reconstructor for records captured
// under the given clock configuration (zero values select the prototype
// card's 1 MHz, 24 bits).
func NewReconstructor(cfg hw.Config, tags *tagfile.File, opts ReconstructOptions) *Reconstructor {
	a := &Analysis{fns: make(map[string]*FnStat)}
	return &Reconstructor{
		dec:        NewDecoder(cfg, tags),
		rec:        &reconstructor{a: a, idleStack: &stack{}, keepItems: !opts.DiscardTrace},
		keepEvents: !opts.DiscardEvents,
	}
}

// Push decodes one raw record and advances the reconstruction.
func (rc *Reconstructor) Push(r hw.Record) {
	if rc.finished {
		panic("analyze: Push after Finish")
	}
	rc.rec.feed(rc.dec.Next(r), rc.keepEvents)
}

// Finish closes the books and returns the Analysis. Overflowed and dropped
// come from the card (or capture header) the records were read from.
func (rc *Reconstructor) Finish(overflowed bool, dropped uint64) *Analysis {
	if rc.finished {
		panic("analyze: Finish called twice")
	}
	rc.finished = true
	rc.rec.finish()
	stats := rc.dec.Stats()
	stats.Overflowed = overflowed
	stats.Dropped = dropped
	rc.rec.a.Stats = stats
	return rc.rec.a
}
