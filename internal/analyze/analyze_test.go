package analyze

import (
	"strings"
	"testing"

	"kprof/internal/hw"
	"kprof/internal/sim"
	"kprof/internal/tagfile"
)

// Test tag file: a few functions plus swtch ('!') and an inline tag.
const testTags = `a/500
b/502
c/504
isaintr/506
swtch/600!
MGET/1002=
`

func mustTags(t *testing.T) *tagfile.File {
	t.Helper()
	f, err := tagfile.ParseString(testTags)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// cap builds a capture from (tag, µs) pairs.
func capOf(pairs ...[2]uint32) hw.Capture {
	var c hw.Capture
	for _, p := range pairs {
		c.Records = append(c.Records, hw.Record{Tag: uint16(p[0]), Stamp: p[1] & hw.TimerMask})
	}
	return c
}

func analyzeCap(t *testing.T, c hw.Capture) *Analysis {
	t.Helper()
	events, stats := Decode(c, mustTags(t))
	return Reconstruct(events, stats)
}

func TestDecodeUnwrapsTimer(t *testing.T) {
	c := capOf([2]uint32{500, hw.TimerMask}, [2]uint32{501, 5})
	events, _ := Decode(c, mustTags(t))
	if events[0].Time != 0 {
		t.Fatalf("first event at %v", events[0].Time)
	}
	// Wrap: (5 - (2^24-1)) mod 2^24 = 6 µs.
	if events[1].Time != 6*sim.Microsecond {
		t.Fatalf("second event at %v, want 6 µs", events[1].Time)
	}
}

func TestDecodeClassifies(t *testing.T) {
	c := capOf([2]uint32{500, 0}, [2]uint32{1002, 1}, [2]uint32{501, 2}, [2]uint32{600, 3}, [2]uint32{9999, 4})
	events, stats := Decode(c, mustTags(t))
	wantKinds := []EventKind{Entry, Inline, Exit, Entry, Unknown}
	for i, k := range wantKinds {
		if events[i].Kind != k {
			t.Fatalf("event %d kind = %v, want %v", i, events[i].Kind, k)
		}
	}
	if !events[3].CtxSwitch {
		t.Fatal("swtch entry not flagged")
	}
	if stats.UnknownTags != 1 {
		t.Fatalf("unknown tags = %d", stats.UnknownTags)
	}
}

func TestSimpleNesting(t *testing.T) {
	// a { b {} b {} } : a 0..100, b 10..30, b 40..80.
	a := analyzeCap(t, capOf(
		[2]uint32{500, 0}, [2]uint32{502, 10}, [2]uint32{503, 30},
		[2]uint32{502, 40}, [2]uint32{503, 80}, [2]uint32{501, 100},
	))
	sa, _ := a.Fn("a")
	sb, _ := a.Fn("b")
	if sa.Calls != 1 || sb.Calls != 2 {
		t.Fatalf("calls a=%d b=%d", sa.Calls, sb.Calls)
	}
	if sa.Elapsed != 100*sim.Microsecond {
		t.Fatalf("a elapsed = %v", sa.Elapsed)
	}
	if sa.Net != 40*sim.Microsecond {
		t.Fatalf("a net = %v, want 100-60", sa.Net)
	}
	if sb.Elapsed != 60*sim.Microsecond || sb.Net != 60*sim.Microsecond {
		t.Fatalf("b elapsed=%v net=%v", sb.Elapsed, sb.Net)
	}
	if sb.Max != 40*sim.Microsecond || sb.MinOrZero() != 20*sim.Microsecond {
		t.Fatalf("b max=%v min=%v", sb.Max, sb.MinOrZero())
	}
	if sb.Avg() != 30*sim.Microsecond {
		t.Fatalf("b avg = %v", sb.Avg())
	}
}

func TestContextSwitchSplitsPaths(t *testing.T) {
	// Process A: a { b { swtch-in... } }; process B first runs while A
	// sleeps. Timeline:
	//   0  a enter (A)
	//  10  b enter (A)
	//  20  swtch enter (A sleeps)           -> idle begins
	//  50  swtch exit (B resumes, fresh)    -> idle 30
	//  55  c enter (B)
	//  75  c exit  (B)
	//  80  swtch enter (B sleeps)           -> idle begins
	//  95  swtch exit (A resumes)           -> idle 15
	// 100  b exit (A)  <- orphan exit identifies A's stack
	// 120  a exit (A)
	a := analyzeCap(t, capOf(
		[2]uint32{500, 0}, [2]uint32{502, 10}, [2]uint32{600, 20},
		[2]uint32{601, 50}, [2]uint32{504, 55}, [2]uint32{505, 75},
		[2]uint32{600, 80}, [2]uint32{601, 95},
		[2]uint32{503, 100}, [2]uint32{501, 120},
	))
	if a.Idle != 45*sim.Microsecond {
		t.Fatalf("idle = %v, want 45 µs", a.Idle)
	}
	if a.Switches != 2 {
		t.Fatalf("switches = %d", a.Switches)
	}
	sb, _ := a.Fn("b")
	// b: 10..100 minus out-of-context 20..95 = 15 µs in context.
	if sb.Elapsed != 15*sim.Microsecond {
		t.Fatalf("b elapsed = %v, want 15 µs (in-context only)", sb.Elapsed)
	}
	sa, _ := a.Fn("a")
	// a: 0..120 minus the same 75 µs switched out = 45; net = 45-15 = 30.
	if sa.Elapsed != 45*sim.Microsecond {
		t.Fatalf("a elapsed = %v, want 45 µs", sa.Elapsed)
	}
	if sa.Net != 30*sim.Microsecond {
		t.Fatalf("a net = %v", sa.Net)
	}
	sc, _ := a.Fn("c")
	if sc.Elapsed != 20*sim.Microsecond {
		t.Fatalf("c elapsed = %v", sc.Elapsed)
	}
	if a.OrphanExits != 0 {
		t.Fatalf("orphan exits = %d", a.OrphanExits)
	}
}

func TestInterruptDuringIdleCountsAsRunTime(t *testing.T) {
	// swtch entry at 10, isaintr 20..60 inside the idle window, swtch
	// exit at 100: idle = 90 - 40 = 50.
	a := analyzeCap(t, capOf(
		[2]uint32{500, 0}, [2]uint32{600, 10},
		[2]uint32{506, 20}, [2]uint32{507, 60},
		[2]uint32{601, 100}, [2]uint32{501, 120},
	))
	if a.Idle != 50*sim.Microsecond {
		t.Fatalf("idle = %v, want 50 µs", a.Idle)
	}
	si, _ := a.Fn("isaintr")
	if si.Elapsed != 40*sim.Microsecond {
		t.Fatalf("isaintr elapsed = %v", si.Elapsed)
	}
}

func TestMismatchedExitRecovery(t *testing.T) {
	// a { b { (b's exit lost) } a-exit } — a's exit force-closes b.
	a := analyzeCap(t, capOf(
		[2]uint32{500, 0}, [2]uint32{502, 10}, [2]uint32{501, 50},
	))
	if a.Recovered != 1 {
		t.Fatalf("recovered = %d", a.Recovered)
	}
	sa, _ := a.Fn("a")
	if sa.Calls != 1 || sa.Elapsed != 50*sim.Microsecond {
		t.Fatalf("a: %+v", sa)
	}
	sb, _ := a.Fn("b")
	if sb.Calls != 1 {
		t.Fatalf("b calls = %d", sb.Calls)
	}
	// b was force-closed: no timing recorded.
	if sb.Elapsed != 0 {
		t.Fatalf("b elapsed = %v, want 0 (incomplete)", sb.Elapsed)
	}
}

func TestOrphanExitAtCaptureStart(t *testing.T) {
	// Capture begins mid-function: first event is c's exit.
	a := analyzeCap(t, capOf(
		[2]uint32{505, 0}, [2]uint32{500, 10}, [2]uint32{501, 20},
	))
	if a.OrphanExits != 1 {
		t.Fatalf("orphan exits = %d", a.OrphanExits)
	}
	sa, _ := a.Fn("a")
	if sa.Elapsed != 10*sim.Microsecond {
		t.Fatalf("a elapsed = %v", sa.Elapsed)
	}
}

func TestInlineMarksAttachToOpenFrame(t *testing.T) {
	a := analyzeCap(t, capOf(
		[2]uint32{500, 0}, [2]uint32{1002, 5}, [2]uint32{1002, 7}, [2]uint32{501, 10},
	))
	s, ok := a.Fn("MGET")
	if !ok || s.Inlines != 2 {
		t.Fatalf("MGET inlines = %+v", s)
	}
	// The trace carries '==' lines.
	trace := a.TraceString(TraceOptions{})
	if strings.Count(trace, "== MGET") != 2 {
		t.Fatalf("trace:\n%s", trace)
	}
}

func TestSummaryFormat(t *testing.T) {
	a := analyzeCap(t, capOf(
		[2]uint32{500, 0}, [2]uint32{502, 10}, [2]uint32{503, 30}, [2]uint32{501, 100},
	))
	sum := a.SummaryString(0)
	for _, want := range []string{"Elapsed time = 0 sec 100 us (4 tags)", "Accumulated run time", "Idle time", "% real", "b", "a"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
	// Sorted by net: a (net 80) before b (net 20).
	if strings.Index(sum, "   a\n") > strings.Index(sum, "   b\n") {
		t.Fatalf("summary not sorted by net:\n%s", sum)
	}
}

func TestTraceFormat(t *testing.T) {
	a := analyzeCap(t, capOf(
		[2]uint32{500, 0}, [2]uint32{502, 10}, [2]uint32{503, 30}, [2]uint32{501, 100},
		[2]uint32{600, 110}, [2]uint32{601, 150},
	))
	trace := a.TraceString(TraceOptions{})
	for _, want := range []string{
		"0:000 000 -> a (80 us, 100 total)",
		"0:000 010     -> b (20 us)",
		"0:000 030     <-",
		"Context switch out",
		"Context switch in",
	} {
		if !strings.Contains(trace, want) {
			t.Fatalf("trace missing %q:\n%s", want, trace)
		}
	}
}

func TestTraceWindowAndLimit(t *testing.T) {
	a := analyzeCap(t, capOf(
		[2]uint32{500, 0}, [2]uint32{501, 10},
		[2]uint32{502, 20}, [2]uint32{503, 30},
	))
	trace := a.TraceString(TraceOptions{From: 15 * sim.Microsecond})
	if strings.Contains(trace, "-> a") {
		t.Fatalf("window leak:\n%s", trace)
	}
	trace = a.TraceString(TraceOptions{MaxLines: 1})
	if !strings.Contains(trace, "truncated") {
		t.Fatalf("no truncation notice:\n%s", trace)
	}
}

func TestHistogram(t *testing.T) {
	a := analyzeCap(t, capOf(
		[2]uint32{502, 0}, [2]uint32{503, 3},
		[2]uint32{502, 10}, [2]uint32{503, 40},
		[2]uint32{502, 50}, [2]uint32{503, 53},
	))
	h := a.HistogramOf("b")
	if h.Total != 3 {
		t.Fatalf("histogram total = %d", h.Total)
	}
	if !strings.Contains(h.String(), "#") {
		t.Fatalf("no bars:\n%s", h)
	}
}

func TestGroups(t *testing.T) {
	a := analyzeCap(t, capOf(
		[2]uint32{500, 0}, [2]uint32{501, 30},
		[2]uint32{502, 40}, [2]uint32{503, 50},
	))
	groups := a.Groups(map[string]string{"a": "net", "b": "fs"})
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0].Name != "net" || groups[0].Net != 30*sim.Microsecond {
		t.Fatalf("top group = %+v", groups[0])
	}
	out := GroupsString(groups)
	if !strings.Contains(out, "net") || !strings.Contains(out, "fs") {
		t.Fatalf("groups render:\n%s", out)
	}
}

func TestWhatIfEstimators(t *testing.T) {
	p := PacketCost{
		DriverCopy: 1045 * sim.Microsecond,
		Checksum:   843 * sim.Microsecond,
		Copyout:    40 * sim.Microsecond,
		Other:      100 * sim.Microsecond,
		Bytes:      1024,
	}
	// Paper: total ≈ 2000 µs.
	if tot := p.Total(); tot != 2028*sim.Microsecond {
		t.Fatalf("total = %v", tot)
	}
	// Mbuf linking: copy saved, checksum+copyout slowed by the bus
	// penalty — a net loss ("would actually decrease the performance").
	link := EstimateMbufLinking(p, 691*sim.Nanosecond)
	if link.Improves() {
		t.Fatalf("mbuf linking should be a loss: %v", link)
	}
	// Paper: ≈3000 µs estimated.
	if link.Estimate < 2300*sim.Microsecond || link.Estimate > 3500*sim.Microsecond {
		t.Fatalf("mbuf linking estimate = %v, want ≈3000 µs", link.Estimate)
	}
	// Recoded checksum: a big win, ≈2000 → ≈1200 µs.
	opt := EstimateOptimizedChecksum(p, 42*sim.Nanosecond, 8*sim.Microsecond)
	if !opt.Improves() {
		t.Fatalf("optimized cksum should win: %v", opt)
	}
	if opt.Estimate < 1100*sim.Microsecond || opt.Estimate > 1400*sim.Microsecond {
		t.Fatalf("optimized estimate = %v, want ≈1200 µs", opt.Estimate)
	}
	report := WhatIfReport([]WhatIf{link, opt})
	if !strings.Contains(report, "LOSS") || !strings.Contains(report, "win") {
		t.Fatalf("report:\n%s", report)
	}
}

func TestWhatIfFlatVerdict(t *testing.T) {
	// A zero-delta estimate is a tie, not a regression.
	w := WhatIf{Name: "no-op change", Baseline: 2000 * sim.Microsecond, Estimate: 2000 * sim.Microsecond}
	if w.Improves() {
		t.Fatalf("tie must not claim a win: %v", w)
	}
	if s := w.String(); !strings.Contains(s, "flat") || strings.Contains(s, "LOSS") {
		t.Fatalf("tie verdict = %q, want flat", s)
	}
	loss := WhatIf{Name: "worse", Baseline: 2000 * sim.Microsecond, Estimate: 2001 * sim.Microsecond}
	if s := loss.String(); !strings.Contains(s, "LOSS") {
		t.Fatalf("loss verdict = %q", s)
	}
}

func TestEmptyCapture(t *testing.T) {
	a := analyzeCap(t, hw.Capture{})
	if a.Elapsed() != 0 || len(a.Functions()) != 0 {
		t.Fatal("empty capture not empty")
	}
	if a.SummaryString(0) == "" {
		t.Fatal("summary should still render headers")
	}
}

func TestCaptureEndsMidIdle(t *testing.T) {
	a := analyzeCap(t, capOf(
		[2]uint32{500, 0}, [2]uint32{501, 10}, [2]uint32{600, 20},
		[2]uint32{506, 40}, [2]uint32{507, 50}, // interrupt, then capture ends mid-idle
	))
	// Idle from 20 to 50 (end) minus interrupt 10 = 20.
	if a.Idle != 20*sim.Microsecond {
		t.Fatalf("idle = %v", a.Idle)
	}
}

func TestNewProcessFirstDispatch(t *testing.T) {
	// swtch exit with no prior entry and no orphan exits: a brand-new
	// context; its calls count normally.
	a := analyzeCap(t, capOf(
		[2]uint32{601, 10}, [2]uint32{500, 20}, [2]uint32{501, 40},
	))
	sa, _ := a.Fn("a")
	if sa.Calls != 1 || sa.Elapsed != 20*sim.Microsecond {
		t.Fatalf("a: %+v", sa)
	}
	// The capture's timeline starts at its first record (the swtch
	// exit), so no idle is observable before it.
	if a.Idle != 0 {
		t.Fatalf("idle = %v", a.Idle)
	}
}
