package analyze

import (
	"math"
	"testing"

	"kprof/internal/hw"
	"kprof/internal/sim"
)

// pseudoCapture builds a busy synthetic capture: nested calls, context
// switches, inline marks, unknown tags, and stamp gaps that wrap the
// 24-bit counter, driven by a deterministic PRNG.
func pseudoCapture(seed uint64, n int) hw.Capture {
	r := sim.NewRand(seed)
	var c hw.Capture
	stamp := uint32(r.Uint64())
	tags := []uint32{500, 501, 502, 503, 504, 505, 506, 507, 600, 601, 1002, 9999}
	for i := 0; i < n; i++ {
		stamp = (stamp + uint32(r.Intn(200_000))) & hw.TimerMask
		tag := tags[r.Intn(len(tags))]
		c.Records = append(c.Records, hw.Record{Tag: uint16(tag), Stamp: stamp})
	}
	c.Overflowed = true
	c.Dropped = 7
	return c
}

// The streaming reconstructor must agree with the batch path on every
// retained quantity; with nothing discarded, on the trace as well.
func TestStreamingMatchesBatch(t *testing.T) {
	tags := mustTags(t)
	for _, seed := range []uint64{1, 2, 77} {
		c := pseudoCapture(seed, 3000)
		events, stats := Decode(c, tags)
		batch := Reconstruct(events, stats)

		rc := NewReconstructor(c.ClockConfig(), tags, ReconstructOptions{})
		for _, r := range c.Records {
			rc.Push(r)
		}
		stream := rc.Finish(c.Overflowed, c.Dropped)

		if got, want := stream.SummaryString(0), batch.SummaryString(0); got != want {
			t.Fatalf("seed %d: streaming summary differs\n--- streaming ---\n%s--- batch ---\n%s", seed, got, want)
		}
		if got, want := stream.TraceString(TraceOptions{}), batch.TraceString(TraceOptions{}); got != want {
			t.Fatalf("seed %d: streaming trace differs", seed)
		}
		if stream.Stats != batch.Stats {
			t.Fatalf("seed %d: stats %+v != %+v", seed, stream.Stats, batch.Stats)
		}
		if stream.Idle != batch.Idle || stream.Switches != batch.Switches ||
			stream.OrphanExits != batch.OrphanExits || stream.Recovered != batch.Recovered {
			t.Fatalf("seed %d: accounting differs", seed)
		}
	}
}

// Discarding events and trace must not change the statistics, and must
// actually discard.
func TestStreamingLeanDropsBulk(t *testing.T) {
	tags := mustTags(t)
	c := pseudoCapture(42, 2000)
	events, stats := Decode(c, tags)
	batch := Reconstruct(events, stats)

	rc := NewReconstructor(c.ClockConfig(), tags, ReconstructOptions{DiscardEvents: true, DiscardTrace: true})
	for _, r := range c.Records {
		rc.Push(r)
	}
	lean := rc.Finish(c.Overflowed, c.Dropped)

	if len(lean.Events) != 0 || len(lean.Items) != 0 {
		t.Fatalf("lean analysis retained %d events, %d items", len(lean.Events), len(lean.Items))
	}
	if got, want := lean.SummaryString(0), batch.SummaryString(0); got != want {
		t.Fatalf("lean summary differs\n--- lean ---\n%s--- batch ---\n%s", got, want)
	}
	if lean.Idle != batch.Idle || lean.Start != batch.Start || lean.End != batch.End {
		t.Fatal("lean accounting differs")
	}
}

func TestAccAddAndMerge(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	var whole Acc
	for _, x := range xs {
		whole.Add(x)
	}
	var left, right Acc
	for _, x := range xs[:4] {
		left.Add(x)
	}
	for _, x := range xs[4:] {
		right.Add(x)
	}
	left.Merge(right)
	if left.N != whole.N || left.Min() != whole.Min() || left.Max() != whole.Max() {
		t.Fatalf("merge counts/extremes: %+v vs %+v", left, whole)
	}
	if math.Abs(left.Mean-whole.Mean) > 1e-12 || math.Abs(left.Std()-whole.Std()) > 1e-12 {
		t.Fatalf("merge moments: mean %v vs %v, std %v vs %v", left.Mean, whole.Mean, left.Std(), whole.Std())
	}
	// Sanity against the direct formulas.
	mean := 44.0 / 11
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	// Sample standard deviation: N−1 divisor (11 observations).
	if math.Abs(whole.Mean-mean) > 1e-12 || math.Abs(whole.Std()-math.Sqrt(ss/10)) > 1e-12 {
		t.Fatalf("wrong moments: %v, %v", whole.Mean, whole.Std())
	}
	// Merge into empty and merge of empty.
	var empty Acc
	empty.Merge(whole)
	if empty != whole {
		t.Fatal("merge into empty lost state")
	}
	whole.Merge(Acc{})
	if empty != whole {
		t.Fatal("merging an empty accumulator changed state")
	}
}

func TestAccCV(t *testing.T) {
	var a Acc
	for _, x := range []float64{10, 10, 10} {
		a.Add(x)
	}
	if a.CV() != 0 {
		t.Fatalf("constant series CV = %v", a.CV())
	}
	var z Acc
	z.Add(0)
	z.Add(0)
	if z.CV() != 0 {
		t.Fatalf("zero-mean CV = %v", z.CV())
	}
}
