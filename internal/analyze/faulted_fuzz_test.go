// Fuzzing the hardened decode pipeline end to end: arbitrary (and
// arbitrarily corrupted) raw record streams must reconstruct without
// panicking or hanging, with sane accounting, whatever the fuzzer finds.
// This lives in the external test package so the corpus can be seeded from
// a real capture taken through core — the same bytes a damaged card would
// hand the host.
package analyze_test

import (
	"testing"

	"kprof/internal/analyze"
	"kprof/internal/core"
	"kprof/internal/hw"
	"kprof/internal/kernel"
	"kprof/internal/sim"
	"kprof/internal/tagfile"
	"kprof/internal/workload"
)

// encodeRecords packs records as the fuzz input format: 5 bytes each —
// little-endian tag, then the 24-bit stamp.
func encodeRecords(recs []hw.Record) []byte {
	out := make([]byte, 0, 5*len(recs))
	for _, r := range recs {
		out = append(out, byte(r.Tag), byte(r.Tag>>8),
			byte(r.Stamp), byte(r.Stamp>>8), byte(r.Stamp>>16))
	}
	return out
}

func decodeRecords(data []byte) []hw.Record {
	var recs []hw.Record
	for i := 0; i+5 <= len(data); i += 5 {
		recs = append(recs, hw.Record{
			Tag:   uint16(data[i]) | uint16(data[i+1])<<8,
			Stamp: (uint32(data[i+2]) | uint32(data[i+3])<<8 | uint32(data[i+4])<<16) & hw.TimerMask,
		})
	}
	return recs
}

// realCapture profiles a short netrecv run and returns its raw capture and
// tag file — genuine record streams for the fuzz corpus.
func realCapture(tb testing.TB) (hw.Capture, *tagfile.File) {
	tb.Helper()
	m := core.NewMachine(kernel.Config{Seed: 42})
	s, err := core.NewSession(m, core.ProfileConfig{})
	if err != nil {
		tb.Fatal(err)
	}
	s.Arm()
	if _, err := workload.NetReceive(m, 5*sim.Millisecond); err != nil {
		tb.Fatal(err)
	}
	s.Disarm()
	return s.Capture(), s.Tags
}

// FuzzFaultedDecode streams fuzzer-controlled raw records — seeded from a
// genuine capture, then mutated by bit flips, truncation, and whatever else
// the fuzzer invents — through the full hardened pipeline: repairing
// decoder, segment stitching, reconstruction. The pipeline must never
// panic, the timeline must be well-formed, and the accounting must add up.
func FuzzFaultedDecode(f *testing.F) {
	c, tags := realCapture(f)
	recs := c.Records
	// A few hundred genuine records seed plenty of structure; a full
	// 16384-record corpus entry just slows mutation down.
	if len(recs) > 400 {
		recs = recs[:400]
	}
	raw := encodeRecords(recs)
	f.Add(raw, uint8(0))
	// Seeds resembling common damage: truncation, a flipped high stamp
	// bit, a bogus tag, duplicate records, and an empty stream.
	if len(raw) >= 40 {
		f.Add(raw[:35], uint8(1)) // mid-record truncation
		flipped := append([]byte(nil), raw...)
		flipped[4+2] ^= 0x80 // high bit of record 0's stamp
		f.Add(flipped, uint8(2))
		bogus := append([]byte(nil), raw...)
		bogus[0], bogus[1] = 0xFF, 0xFF // tag 65535: resolves to nothing
		f.Add(bogus, uint8(0))
		f.Add(append(append([]byte(nil), raw[:10]...), raw[:10]...), uint8(3))
	}
	f.Add([]byte{}, uint8(0))

	f.Fuzz(func(t *testing.T, data []byte, split uint8) {
		recs := decodeRecords(data)
		// split carves the stream into stitched segments, exercising the
		// drain-boundary paths; 0 keeps one segment.
		segLen := len(recs)
		if split > 0 {
			segLen = len(recs)/int(split%8+2) + 1
		}
		rc := analyze.NewReconstructor(hw.Config{}, tags, analyze.ReconstructOptions{
			Repair: analyze.DefaultRepair(),
		})
		for i, r := range recs {
			rc.Push(r)
			if (i+1)%segLen == 0 && i+1 < len(recs) {
				// Odd splits are lossy boundaries, exercising force-close.
				rc.EndSegment(uint64(split%2), false)
			}
		}
		a := rc.Finish(false, 0)

		if a.Stats.Records != len(recs) {
			t.Fatalf("decoded %d records of %d", a.Stats.Records, len(recs))
		}
		if a.End < a.Start {
			t.Fatalf("End %v before Start %v", a.End, a.Start)
		}
		if a.RunTime() < 0 {
			t.Fatalf("negative run time %v (elapsed %v, idle %v)", a.RunTime(), a.Elapsed(), a.Idle)
		}
		if a.Stats.CorruptRecords > len(recs) {
			t.Fatalf("corrupt count %d exceeds record count %d", a.Stats.CorruptRecords, len(recs))
		}
		if a.Stats.RepairedTimestamps > len(recs) || a.Stats.Resyncs > len(recs) {
			t.Fatalf("implausible repair accounting: %+v", a.Stats)
		}
		// Per-segment corrupt counts never exceed the capture total (the
		// tail after the last boundary belongs to no segment, so the sum
		// can fall short but never overshoot).
		segCorrupt := 0
		for _, seg := range a.Segments {
			if seg.Corrupt < 0 || seg.Records < 0 {
				t.Fatalf("negative segment accounting: %+v", seg)
			}
			segCorrupt += seg.Corrupt
		}
		if segCorrupt > a.Stats.CorruptRecords {
			t.Fatalf("segment corrupt counts sum to %d, stats say %d", segCorrupt, a.Stats.CorruptRecords)
		}
		// The per-function stats must be internally consistent.
		for _, s := range a.Functions() {
			if s.TimedCalls > s.Calls {
				t.Fatalf("%s: %d timed of %d calls", s.Name, s.TimedCalls, s.Calls)
			}
		}
	})
}
