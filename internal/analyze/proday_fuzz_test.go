// Fuzzing the decode pipeline with proday-shaped streams: the production
// day scenario nests deeper and switches context more than any other
// workload, so its captures exercise stack depths and interleavings the
// netrecv-seeded corpus never reaches. The fuzzer mutates a genuine
// proday capture; reconstruction must stay panic-free with sane
// accounting whatever it invents.
package analyze_test

import (
	"testing"

	"kprof/internal/analyze"
	"kprof/internal/core"
	"kprof/internal/hw"
	"kprof/internal/kernel"
	"kprof/internal/sim"
	"kprof/internal/tagfile"
	"kprof/internal/workload"
)

// prodayCapture profiles a short proday run and returns its raw capture
// and tag file. ProdaySetup runs before the session so the SNMP and NFS
// functions it registers are tagged in the corpus.
func prodayCapture(tb testing.TB) (hw.Capture, *tagfile.File) {
	tb.Helper()
	p := workload.Params{
		Duration: 150 * sim.Millisecond,
		Conns:    40,
		Rate:     250,
	}
	m := core.NewMachine(kernel.Config{Seed: 42})
	if err := workload.ProdaySetup(m, p); err != nil {
		tb.Fatal(err)
	}
	s, err := core.NewSession(m, core.ProfileConfig{})
	if err != nil {
		tb.Fatal(err)
	}
	s.Arm()
	if _, err := workload.Proday(m, p); err != nil {
		tb.Fatal(err)
	}
	s.Disarm()
	return s.Capture(), s.Tags
}

// FuzzProdayDecode streams mutated proday records through the hardened
// pipeline. Beyond FuzzFaultedDecode's generic invariants, it checks the
// deep-nesting accounting: no function's timed calls exceed its calls and
// segment totals stay within the capture.
func FuzzProdayDecode(f *testing.F) {
	c, tags := prodayCapture(f)
	recs := c.Records
	// Enough genuine records to seed deep call stacks and context-switch
	// churn without bloating the corpus.
	if len(recs) > 600 {
		recs = recs[:600]
	}
	raw := encodeRecords(recs)
	f.Add(raw, uint8(0))
	if len(raw) >= 40 {
		f.Add(raw[:len(raw)/2+3], uint8(1)) // mid-record truncation
		swapped := append([]byte(nil), raw...)
		// Swap two records: an exit arriving before its entry.
		copy(swapped[0:5], raw[5:10])
		copy(swapped[5:10], raw[0:5])
		f.Add(swapped, uint8(2))
		f.Add(raw, uint8(5)) // many lossy boundaries through deep stacks
	}

	f.Fuzz(func(t *testing.T, data []byte, split uint8) {
		recs := decodeRecords(data)
		segLen := len(recs)
		if split > 0 {
			segLen = len(recs)/int(split%8+2) + 1
		}
		rc := analyze.NewReconstructor(hw.Config{}, tags, analyze.ReconstructOptions{
			Repair: analyze.DefaultRepair(),
		})
		for i, r := range recs {
			rc.Push(r)
			if (i+1)%segLen == 0 && i+1 < len(recs) {
				rc.EndSegment(uint64(split%2), false)
			}
		}
		a := rc.Finish(false, 0)

		if a.Stats.Records != len(recs) {
			t.Fatalf("decoded %d records of %d", a.Stats.Records, len(recs))
		}
		if a.End < a.Start || a.RunTime() < 0 {
			t.Fatalf("malformed timeline: start %v end %v run %v", a.Start, a.End, a.RunTime())
		}
		totalSeg, forced := 0, 0
		for _, seg := range a.Segments {
			if seg.Records < 0 || seg.ForceClosed < 0 {
				t.Fatalf("negative segment accounting: %+v", seg)
			}
			totalSeg += seg.Records
			forced += seg.ForceClosed
		}
		if totalSeg > a.Stats.Records {
			t.Fatalf("segments hold %d records, capture only %d", totalSeg, a.Stats.Records)
		}
		if forced > a.Recovered {
			t.Fatalf("force-closed %d frames but Recovered only %d", forced, a.Recovered)
		}
		calls := 0
		for _, s := range a.Functions() {
			if s.TimedCalls > s.Calls || s.Calls < 0 {
				t.Fatalf("%s: %d timed of %d calls", s.Name, s.TimedCalls, s.Calls)
			}
			calls += s.Calls
		}
		if calls > len(recs) {
			t.Fatalf("%d calls reconstructed from %d records", calls, len(recs))
		}
	})
}
