package analyze

import (
	"testing"

	"kprof/internal/sim"
)

// The Figure 4 resume shape: between "Context switch in" and the orphan
// tsleep exit there are completed calls (splx in the paper's trace). Those
// tentative frames must be spliced in as children of the resumed frame.
//
// Tag file: a=500, b=502 (stands in for tsleep), c=504 (stands in for
// splx), swtch=600!.
func TestAdoptSplicesTentativeFrames(t *testing.T) {
	a := analyzeCap(t, capOf(
		[2]uint32{500, 0},   // a enter       (process A)
		[2]uint32{502, 10},  // b enter       (A blocks inside b)
		[2]uint32{600, 20},  // swtch enter   -> idle
		[2]uint32{601, 60},  // swtch exit    -> pending resume
		[2]uint32{504, 65},  // c enter       (balanced call before the orphan exit)
		[2]uint32{505, 75},  // c exit
		[2]uint32{503, 90},  // b exit        <- orphan: adopts A's stack
		[2]uint32{501, 100}, // a exit
	))
	sb, ok := a.Fn("b")
	if !ok {
		t.Fatal("b missing")
	}
	// b in-context: 10..90 minus 20..60 switched out = 40; minus child c
	// (10) = net 30.
	if sb.Elapsed != 40*sim.Microsecond {
		t.Fatalf("b elapsed = %v, want 40 µs", sb.Elapsed)
	}
	if sb.Net != 30*sim.Microsecond {
		t.Fatalf("b net = %v, want 30 µs (c spliced in as child)", sb.Net)
	}
	// And c must appear as a child of b in the tree.
	var bNode *Node
	for _, it := range a.Items {
		if it.Kind == TraceExit && it.Node != nil && it.Node.Name == "b" {
			bNode = it.Node
		}
	}
	if bNode == nil || len(bNode.Children) != 1 || bNode.Children[0].Name != "c" {
		t.Fatalf("b's children = %+v", bNode)
	}
	if a.OrphanExits != 0 {
		t.Fatalf("orphan exits = %d", a.OrphanExits)
	}
	if a.Idle != 40*sim.Microsecond {
		t.Fatalf("idle = %v", a.Idle)
	}
}

// Two suspended processes sleeping in the same function: adoption must pick
// the oldest (FIFO, matching the run queue) and keep the books straight.
func TestAdoptPicksOldestMatchingStack(t *testing.T) {
	a := analyzeCap(t, capOf(
		// Process 1: a { swtch
		[2]uint32{500, 0}, [2]uint32{600, 10},
		// Process 2 first dispatch: swtch exit; a { swtch (suspends too)
		[2]uint32{601, 20}, [2]uint32{500, 25}, [2]uint32{600, 35},
		// Resume: exit of a — ambiguous; FIFO picks process 1's stack.
		[2]uint32{601, 50}, [2]uint32{501, 60},
		// Resume again: the remaining stack's a exits.
		[2]uint32{600, 70}, [2]uint32{601, 80}, [2]uint32{501, 95},
	))
	sa, _ := a.Fn("a")
	if sa.Calls != 2 {
		t.Fatalf("a calls = %d", sa.Calls)
	}
	// Process 1's a: 0..60 minus 10..50 switched out = 20. Process 2's a:
	// 25..95 minus 35..80 switched out (idle, process 1's turn, idle
	// again) = 25. Total elapsed 45.
	if sa.Elapsed != 45*sim.Microsecond {
		t.Fatalf("a elapsed total = %v, want 45 µs", sa.Elapsed)
	}
	if a.OrphanExits != 0 {
		t.Fatalf("orphans = %d", a.OrphanExits)
	}
}

// An unclosed tentative frame at adoption time is malformed input (lost
// exit events); the analyzer must recover, not corrupt.
func TestAdoptWithUnclosedTentativeFrame(t *testing.T) {
	a := analyzeCap(t, capOf(
		[2]uint32{500, 0}, [2]uint32{600, 10}, // a { swtch
		[2]uint32{601, 20},
		[2]uint32{504, 25},                     // c enters and never exits (lost event)
		[2]uint32{501, 40},                     // orphan exit of a -> adopt
		[2]uint32{502, 50}, [2]uint32{503, 60}, // life goes on
	))
	if a.Recovered == 0 {
		t.Fatal("unclosed tentative frame not recovered")
	}
	sb, _ := a.Fn("b")
	if sb.Calls != 1 || sb.Elapsed != 10*sim.Microsecond {
		t.Fatalf("post-recovery b = %+v", sb)
	}
}
