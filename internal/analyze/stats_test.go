package analyze

import (
	"errors"
	"math"
	"strings"
	"testing"

	"kprof/internal/sim"
)

// approxEq compares floats to a relative tolerance (absolute near zero).
func approxEq(a, b float64) bool {
	d := math.Abs(a - b)
	if d <= 1e-9 {
		return true
	}
	return d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// accSeries folds xs serially into one accumulator.
func accSeries(xs []float64) Acc {
	var a Acc
	for _, x := range xs {
		a.Add(x)
	}
	return a
}

// Property: merging the accumulators of ANY split of a series — every
// split point, including the empty prefix and empty suffix, and a
// three-way split — must equal the single serial Add pass on every
// moment (N, Mean, M2) and both extremes.
func TestAccMergeEqualsSerial(t *testing.T) {
	rng := sim.NewRand(99)
	series := [][]float64{
		{},
		{3.25},
		{-7, -7, -7},
		{1e-9, -1e-9, 2.5e12, 4},
	}
	// Random series of several sizes, mixed signs and magnitudes.
	for _, n := range []int{2, 5, 17, 100} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(7)-3))
		}
		series = append(series, xs)
	}
	check := func(got, want Acc, what string, xs []float64) {
		t.Helper()
		if got.N != want.N {
			t.Fatalf("%s of %v: N %d != %d", what, xs, got.N, want.N)
		}
		if got.N == 0 {
			return
		}
		if !approxEq(got.Mean, want.Mean) || !approxEq(got.M2, want.M2) {
			t.Fatalf("%s of %v: moments (%v, %v) != (%v, %v)",
				what, xs, got.Mean, got.M2, want.Mean, want.M2)
		}
		if got.Min() != want.Min() || got.Max() != want.Max() {
			t.Fatalf("%s of %v: extremes [%v, %v] != [%v, %v]",
				what, xs, got.Min(), got.Max(), want.Min(), want.Max())
		}
	}
	for _, xs := range series {
		want := accSeries(xs)
		for cut := 0; cut <= len(xs); cut++ {
			got := accSeries(xs[:cut])
			got.Merge(accSeries(xs[cut:]))
			check(got, want, "two-way split", xs)
		}
		for i := 0; i <= len(xs); i++ {
			for j := i; j <= len(xs); j++ {
				got := accSeries(xs[:i])
				got.Merge(accSeries(xs[i:j]))
				got.Merge(accSeries(xs[j:]))
				check(got, want, "three-way split", xs)
			}
		}
	}
}

// Edge cases the property sweep can't express directly: empty⊕empty,
// empty⊕nonempty, the single element, and negative means through CV.
func TestAccEdgeCases(t *testing.T) {
	var a, b Acc
	a.Merge(b)
	if a.N != 0 || a.Mean != 0 || a.M2 != 0 || a.Std() != 0 || a.CV() != 0 {
		t.Fatalf("empty+empty changed state: %+v", a)
	}
	b.Add(5)
	a.Merge(b)
	if a.N != 1 || a.Mean != 5 || a.Min() != 5 || a.Max() != 5 {
		t.Fatalf("empty+single: %+v", a)
	}
	// A single observation has no defined spread.
	if a.Std() != 0 || a.CV() != 0 {
		t.Fatalf("single observation spread: std %v cv %v", a.Std(), a.CV())
	}
	// CV uses |mean|: a negative-mean series must report the same
	// (positive) coefficient as its mirror image.
	neg := accSeries([]float64{-10, -12, -14})
	pos := accSeries([]float64{10, 12, 14})
	if neg.CV() <= 0 || !approxEq(neg.CV(), pos.CV()) {
		t.Fatalf("negative-mean CV %v, mirrored %v", neg.CV(), pos.CV())
	}
	// Sample divisor: two observations {0, 2} have mean 1, M2 = 2,
	// sample variance 2/(2−1) = 2.
	two := accSeries([]float64{0, 2})
	if !approxEq(two.Std(), math.Sqrt2) {
		t.Fatalf("sample std of {0,2} = %v, want sqrt(2)", two.Std())
	}
}

// failAfter errors once n bytes have been written — a stand-in for a
// full disk or a closed pipe.
type failAfter struct {
	n   int
	err error
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, f.err
	}
	if len(p) > f.n {
		p = p[:f.n]
	}
	f.n -= len(p)
	if f.n == 0 {
		return len(p), f.err
	}
	return len(p), nil
}

// Every plain-text report writer must surface the first write failure
// instead of pretending success.
func TestReportWritersPropagateErrors(t *testing.T) {
	tags := mustTags(t)
	c := pseudoCapture(7, 2000)
	a := ReconstructCapture(c, tags, ReconstructOptions{})
	groupOf := map[string]string{"a": "net", "b": "fs"}
	hist := a.HistogramOf("a")
	if hist.Total == 0 {
		t.Fatal("capture produced no completed calls of 'a'; histogram writer untested")
	}
	writers := map[string]func(w *failAfter) error{
		"summary":   func(w *failAfter) error { return a.WriteSummary(w, 0) },
		"segments":  func(w *failAfter) error { return a.WriteSegments(w) },
		"trace":     func(w *failAfter) error { return a.WriteTrace(w, TraceOptions{}) },
		"groups":    func(w *failAfter) error { return WriteGroups(w, a.Groups(groupOf)) },
		"histogram": func(w *failAfter) error { return hist.Write(w) },
		"callgraph": func(w *failAfter) error { return a.CallGraph().Write(w, 0) },
		"timeline":  func(w *failAfter) error { return a.Timeline(groupOf, 64).Write(w) },
	}
	want := errors.New("pipe closed")
	for name, fn := range writers {
		for _, budget := range []int{0, 1, 30} {
			if err := fn(&failAfter{n: budget, err: want}); !errors.Is(err, want) {
				t.Errorf("%s writer, budget %d: error %v, want %v", name, budget, err, want)
			}
		}
	}
	var b strings.Builder
	if err := a.WriteSummary(&b, 0); err != nil {
		t.Fatalf("healthy writer errored: %v", err)
	}
}
