package analyze

import "math"

// Acc is an online accumulator for a scalar metric observed across runs:
// count, mean, variance (Welford's algorithm), minimum and maximum. Two
// accumulators combine exactly with Merge (the parallel-variance update of
// Chan, Golub and LeVeque), so per-seed statistics folded worker by worker
// equal the ones a single serial pass would produce when folded in the
// same order.
type Acc struct {
	N    int
	Mean float64
	M2   float64 // sum of squared deviations from the running mean
	MinV float64
	MaxV float64
}

// Add folds one observation in.
func (a *Acc) Add(x float64) {
	if a.N == 0 {
		a.MinV, a.MaxV = x, x
	} else {
		if x < a.MinV {
			a.MinV = x
		}
		if x > a.MaxV {
			a.MaxV = x
		}
	}
	a.N++
	d := x - a.Mean
	a.Mean += d / float64(a.N)
	a.M2 += d * (x - a.Mean)
}

// Merge folds another accumulator in.
func (a *Acc) Merge(b Acc) {
	if b.N == 0 {
		return
	}
	if a.N == 0 {
		*a = b
		return
	}
	if b.MinV < a.MinV {
		a.MinV = b.MinV
	}
	if b.MaxV > a.MaxV {
		a.MaxV = b.MaxV
	}
	n := float64(a.N + b.N)
	d := b.Mean - a.Mean
	a.M2 += b.M2 + d*d*float64(a.N)*float64(b.N)/n
	a.Mean += d * float64(b.N) / n
	a.N += b.N
}

// Std is the sample standard deviation — divisor N−1, since each
// observation is one run drawn from the scenario's distribution, not the
// whole population (zero for fewer than two observations, where spread
// is undefined).
func (a Acc) Std() float64 {
	if a.N < 2 {
		return 0
	}
	return math.Sqrt(a.M2 / float64(a.N-1))
}

// Min reports the smallest observation (zero when empty).
func (a Acc) Min() float64 { return a.MinV }

// Max reports the largest observation (zero when empty).
func (a Acc) Max() float64 { return a.MaxV }

// CV is the coefficient of variation, Std/|Mean| — the scale-free
// stability measure the sweep report uses. It is zero when the mean is
// zero (an all-zero metric is perfectly stable).
func (a Acc) CV() float64 {
	if a.Mean == 0 {
		return 0
	}
	return a.Std() / math.Abs(a.Mean)
}
