// Package analyze is the host-side analysis software: it decodes the raw
// (tag, timestamp) list retrieved from the Profiler's RAM, reconstructs
// nested code paths — splitting per-process paths at the context-switch
// function marked '!' in the name/tag file and treating in-swtch time as
// idle except for interrupts — and produces the paper's two reports: the
// per-function summary (Figure 3) and the real-time code-path trace
// (Figure 4), plus histograms, subsystem grouping and the what-if
// estimators used in the network study.
package analyze

import (
	"kprof/internal/hw"
	"kprof/internal/sim"
	"kprof/internal/tagfile"
)

// EventKind classifies a decoded event.
type EventKind int

// Event kinds: even tags are function entries, odd tags exits, '='-marked
// tags inline marks; tags absent from the name/tag file decode as Unknown.
const (
	Entry EventKind = iota
	Exit
	Inline
	Unknown
)

// String names the kind for reports and errors.
func (k EventKind) String() string {
	switch k {
	case Entry:
		return "entry"
	case Exit:
		return "exit"
	case Inline:
		return "inline"
	}
	return "unknown"
}

// Event is one decoded capture record on the reconstructed timeline.
type Event struct {
	Time sim.Time // unwrapped, relative to the first record
	Kind EventKind
	Name string
	Tag  uint16
	// CtxSwitch marks events of the '!' function (swtch).
	CtxSwitch bool
	// fnIdx is the name/tag-file entry index plus one, or zero when the
	// event was not decoded against a tag file (unknown tags, hand-built
	// events). The reconstructor uses it to reach per-function state by
	// dense index instead of hashing the name on every record.
	fnIdx int32
}

// DecodeStats reports capture-quality information alongside the events.
type DecodeStats struct {
	Records     int
	UnknownTags int
	// Overflowed propagates the card's overflow LED: the capture is the
	// head of the run, and the tail was lost.
	Overflowed bool
	Dropped    uint64

	// CorruptRecords counts records the decoder judged corrupted: a tag
	// that resolves against nothing in the name/tag file, or a timestamp
	// the monotonicity-repair heuristics had to replace. Each record
	// counts once however many ways it was damaged.
	CorruptRecords int
	// RepairedTimestamps counts stamps replaced by interpolation (or
	// zero-advance) because they disagreed with both neighbours.
	RepairedTimestamps int
	// Resyncs counts the times repair gave up interpolating and rebased
	// the timeline on a new stamp (bounded-resync: too many consecutive
	// implausible stamps to call them all glitches).
	Resyncs int
}

// Decoder incrementally unwraps the truncated counter stamps into a
// monotonic timeline and resolves tags against the name/tag file. The
// card's counter is only meaningful as intervals; the timeline starts at
// zero on the first record. Events further apart than the counter's wrap
// interval (≈16.7 s on the prototype's 24-bit 1 MHz counter) alias,
// exactly as on the real hardware. The clock configuration selects the
// tick period and mask, so upgraded cards (the paper's future-work
// higher-precision clock and wider RAM) decode transparently.
//
// Feeding records one at a time keeps the decode O(1) in memory: the
// sweep engine streams a card's RAM straight into the reconstructor
// without ever materializing the event list.
type Decoder struct {
	tags *tagfile.File
	mask uint32
	tick sim.Time

	now   sim.Time
	last  uint32
	first bool

	// Monotonicity-repair state (see RepairConfig). A record whose delta
	// from the trusted timebase is implausibly large is held pending until
	// its successor arrives to arbitrate.
	repair     RepairConfig
	suspect    uint32 // deltas at or above this are implausible, in ticks
	pending    hw.Record
	hasPending bool
	suspectRun int

	records     int
	unknownTags int
	corrupt     int
	repaired    int
	resyncs     int
}

// RepairConfig tunes the decoder's timestamp-monotonicity repair: the
// hardened pipeline's defense against bit flips and jitter in the stored
// 24-bit stamps. A flipped high bit reads back as a huge modular interval;
// left alone it would teleport the timeline forward (and, via the unwrap
// guard, silently alias everything after it). Repair holds any record whose
// interval from the trusted timebase is implausibly large — at least
// SuspectTicks — until the next record arbitrates:
//
//   - successor agrees with the old timebase: the suspect stamp was a
//     glitch; the record keeps its place with an interpolated midpoint
//     time (counted in RepairedTimestamps).
//   - successor agrees with the suspect, and the suspect sits well ahead
//     of the timebase: the jump was real (a genuine long gap); both
//     decode exactly as without repair.
//   - successor agrees with the suspect, but the suspect sits only
//     slightly *behind* the timebase (a small backward modular distance):
//     the timebase itself overshot — an earlier corrupted stamp read as a
//     plausible forward jump and was accepted. The decoder rebases on the
//     suspect without advancing, so the overshoot is not compounded into
//     a full extra timer wrap.
//   - successor agrees with neither: the suspect is zero-advanced as
//     corrupt; after ResyncAfter consecutive unresolvable stamps the
//     decoder rebases its timeline on the newest one (counted in Resyncs).
//
// The heuristic is conservative by construction: captures whose inter-event
// gaps stay below SuspectTicks decode byte-identically with repair on or
// off, and larger genuine gaps still decode identically as long as two
// consecutive records agree (the chain-accept case) — which is why the
// default threshold can sit at ≈4 ms, far below half the wrap yet far
// above any real inter-strobe gap, catching single-bit stamp flips down
// to bit 12. A genuine gap landing within SuspectTicks of a full wrap is
// indistinguishable from a small backward glitch on this counter — the
// information is already gone — so repair prefers the glitch reading and
// trades that corner for surviving corruption.
type RepairConfig struct {
	// Enabled turns repair on. Off (the zero value) reproduces the
	// historical decoder exactly, record for record.
	Enabled bool
	// SuspectTicks is the smallest interval treated as implausible, in
	// counter ticks; 0 means DefaultSuspectTicks (capped at half the
	// wrap for narrow timers).
	SuspectTicks uint32
	// ResyncAfter is how many consecutive unresolvable stamps force a
	// rebase; 0 means 3.
	ResyncAfter int
}

// DefaultSuspectTicks is the default implausibility threshold: 4096 ticks
// (≈4 ms at the prototype card's 1 MHz). Clean kernels strobe every few
// microseconds and even idle gaps stay well under a millisecond, while a
// corrupted stamp is usually wrong by a high timer bit — so the threshold
// sits orders of magnitude above real gaps and below real damage.
const DefaultSuspectTicks = 4096

// DefaultRepair is the hardened pipeline's repair configuration: enabled,
// with the documented defaults.
func DefaultRepair() RepairConfig { return RepairConfig{Enabled: true} }

// NewDecoder returns a decoder for records captured under the given clock
// configuration (zero values select the prototype card's 1 MHz, 24 bits).
// Timestamp repair is off; see NewRepairingDecoder.
func NewDecoder(cfg hw.Config, tags *tagfile.File) *Decoder {
	return NewRepairingDecoder(cfg, tags, RepairConfig{})
}

// NewRepairingDecoder returns a decoder with the given monotonicity-repair
// configuration.
func NewRepairingDecoder(cfg hw.Config, tags *tagfile.File, repair RepairConfig) *Decoder {
	cfg = cfg.WithDefaults()
	d := &Decoder{tags: tags, mask: cfg.Mask(), tick: cfg.TickPeriod(), first: true, repair: repair}
	d.suspect = repair.SuspectTicks
	if d.suspect == 0 {
		d.suspect = DefaultSuspectTicks
		if half := d.mask/2 + 1; d.suspect > half {
			d.suspect = half // a very narrow test timer
		}
	}
	if d.repair.ResyncAfter == 0 {
		d.repair.ResyncAfter = 3
	}
	return d
}

// Next decodes one record. The unwrap is a modular difference against the
// previous stamp, so decoded time never moves backwards regardless of the
// raw stamp values (the out-of-order guard: a stamp that appears to regress
// reads as a near-wrap forward interval, as on the real counter). Next
// bypasses timestamp repair — repair needs one record of lookahead, which
// the Push/Flush pair provides.
func (d *Decoder) Next(r hw.Record) Event {
	if !d.first {
		delta := (r.Stamp - d.last) & d.mask
		d.now += sim.Time(delta) * d.tick
	}
	d.first = false
	d.last = r.Stamp
	d.records++
	return d.event(r, d.now, false)
}

// event builds the decoded event at the given time, resolving the tag and
// maintaining the corruption accounting. repairedStamp marks a record whose
// time was synthesized by the repair heuristics.
func (d *Decoder) event(r hw.Record, at sim.Time, repairedStamp bool) Event {
	e := Event{Time: at, Tag: r.Tag}
	i, kind, name, ctx := d.tags.ResolveRecord(r.Tag)
	isCorrupt := repairedStamp
	switch kind {
	case tagfile.FunctionEntry:
		e.Kind, e.Name, e.CtxSwitch, e.fnIdx = Entry, name, ctx, i+1
	case tagfile.FunctionExit:
		e.Kind, e.Name, e.CtxSwitch, e.fnIdx = Exit, name, ctx, i+1
	case tagfile.InlineTag:
		e.Kind, e.Name, e.fnIdx = Inline, name, i+1
	default:
		e.Kind = Unknown
		d.unknownTags++
		isCorrupt = true
	}
	if isCorrupt {
		d.corrupt++
	}
	return e
}

// Push decodes one record through the repair pipeline, invoking emit for
// each event whose time is final. With repair disabled every record emits
// immediately, exactly as Next decodes it; with repair enabled a suspect
// record is buffered until its successor arrives (or Flush is called), so
// one Push can emit zero, one, or two events.
func (d *Decoder) Push(r hw.Record, emit func(Event)) {
	d.records++
	if d.first {
		d.first = false
		d.last = r.Stamp
		emit(d.event(r, d.now, false))
		return
	}
	if !d.hasPending {
		delta := (r.Stamp - d.last) & d.mask
		if !d.repair.Enabled || delta < d.suspect {
			d.now += sim.Time(delta) * d.tick
			d.last = r.Stamp
			emit(d.event(r, d.now, false))
			return
		}
		d.pending, d.hasPending = r, true
		return
	}
	// A suspect is pending; r arbitrates.
	deltaSkip := (r.Stamp - d.last) & d.mask
	deltaChain := (r.Stamp - d.pending.Stamp) & d.mask
	switch {
	case deltaSkip < d.suspect:
		// r agrees with the trusted timebase: the pending stamp was a
		// glitch between two mutually consistent neighbours. Keep the
		// record, interpolate its time at the midpoint.
		d.repaired++
		emit(d.event(d.pending, d.now+sim.Time(deltaSkip/2)*d.tick, true))
		d.now += sim.Time(deltaSkip) * d.tick
		d.last = r.Stamp
		emit(d.event(r, d.now, false))
		d.hasPending, d.suspectRun = false, 0
	case deltaChain < d.suspect:
		if back := (d.last - d.pending.Stamp) & d.mask; back < d.suspect {
			// The suspect (and r, chained on it) sits only slightly
			// BEHIND the timebase: the timebase overshot — an earlier
			// corrupted stamp read as a plausible forward jump and was
			// accepted. Rebase on the suspect without advancing, so the
			// overshoot is not compounded into a near-full wrap.
			d.repaired++
			emit(d.event(d.pending, d.now, true))
			d.now += sim.Time(deltaChain) * d.tick
			d.last = r.Stamp
			emit(d.event(r, d.now, false))
			d.hasPending, d.suspectRun = false, 0
			return
		}
		// r agrees with the suspect, which sits well ahead of the
		// timebase: the jump was genuine (a long gap or a wholesale
		// timebase move). Accept both, exactly as the unrepaired
		// decoder would have.
		dp := (d.pending.Stamp - d.last) & d.mask
		d.now += sim.Time(dp) * d.tick
		emit(d.event(d.pending, d.now, false))
		d.now += sim.Time(deltaChain) * d.tick
		d.last = r.Stamp
		emit(d.event(r, d.now, false))
		d.hasPending, d.suspectRun = false, 0
	default:
		// r is far from both the timebase and the suspect: the suspect
		// is unresolvable. Zero-advance it as corrupt; r becomes the new
		// suspect, unless this has happened ResyncAfter times in a row —
		// then the timebase has truly moved, and we rebase on r.
		d.repaired++
		emit(d.event(d.pending, d.now, true))
		d.suspectRun++
		if d.suspectRun >= d.repair.ResyncAfter {
			d.resyncs++
			d.last = r.Stamp
			emit(d.event(r, d.now, false))
			d.hasPending, d.suspectRun = false, 0
			return
		}
		d.pending = r
	}
}

// PushBatch decodes a whole drained bank through the repair pipeline,
// emitting exactly the events the same records would produce through
// record-at-a-time Push calls. The common case — no suspect pending and
// every interval in the bank below the suspect threshold — runs as a tight
// batch unwrap with no per-record arbitration; an implausible stamp drops
// to Push for as long as repair state is in play, then the batch scan
// resumes.
func (d *Decoder) PushBatch(rs []hw.Record, emit func(Event)) {
	i := 0
	if d.first && len(rs) > 0 {
		d.records++
		d.first = false
		d.last = rs[0].Stamp
		emit(d.event(rs[0], d.now, false))
		i = 1
	}
	for i < len(rs) {
		if !d.hasPending {
			for ; i < len(rs); i++ {
				r := rs[i]
				delta := (r.Stamp - d.last) & d.mask
				if d.repair.Enabled && delta >= d.suspect {
					break
				}
				d.records++
				d.now += sim.Time(delta) * d.tick
				d.last = r.Stamp
				emit(d.event(r, d.now, false))
			}
			if i >= len(rs) {
				return
			}
		}
		d.Push(rs[i], emit)
		i++
	}
}

// Flush emits any record still held by the repair buffer. An end-of-stream
// suspect has no successor to arbitrate, so it is zero-advanced as corrupt
// rather than allowed to yank the capture's end far forward.
func (d *Decoder) Flush(emit func(Event)) {
	if !d.hasPending {
		return
	}
	d.hasPending = false
	d.repaired++
	emit(d.event(d.pending, d.now, true))
}

// Stats reports what the decoder has seen so far. Overflowed and Dropped
// describe the card, not the decode, so the caller fills them in.
func (d *Decoder) Stats() DecodeStats {
	return DecodeStats{
		Records:            d.records,
		UnknownTags:        d.unknownTags,
		CorruptRecords:     d.corrupt,
		RepairedTimestamps: d.repaired,
		Resyncs:            d.resyncs,
	}
}

// Decode unwraps a whole capture at once (see Decoder for the streaming
// path) and resolves tags against the name/tag file.
func Decode(c hw.Capture, tags *tagfile.File) ([]Event, DecodeStats) {
	d := NewDecoder(c.ClockConfig(), tags)
	events := make([]Event, 0, len(c.Records))
	for _, r := range c.Records {
		events = append(events, d.Next(r))
	}
	stats := d.Stats()
	stats.Overflowed = c.Overflowed
	stats.Dropped = c.Dropped
	return events, stats
}
