// Package analyze is the host-side analysis software: it decodes the raw
// (tag, timestamp) list retrieved from the Profiler's RAM, reconstructs
// nested code paths — splitting per-process paths at the context-switch
// function marked '!' in the name/tag file and treating in-swtch time as
// idle except for interrupts — and produces the paper's two reports: the
// per-function summary (Figure 3) and the real-time code-path trace
// (Figure 4), plus histograms, subsystem grouping and the what-if
// estimators used in the network study.
package analyze

import (
	"kprof/internal/hw"
	"kprof/internal/sim"
	"kprof/internal/tagfile"
)

// EventKind classifies a decoded event.
type EventKind int

const (
	Entry EventKind = iota
	Exit
	Inline
	Unknown
)

func (k EventKind) String() string {
	switch k {
	case Entry:
		return "entry"
	case Exit:
		return "exit"
	case Inline:
		return "inline"
	}
	return "unknown"
}

// Event is one decoded capture record on the reconstructed timeline.
type Event struct {
	Time sim.Time // unwrapped, relative to the first record
	Kind EventKind
	Name string
	Tag  uint16
	// CtxSwitch marks events of the '!' function (swtch).
	CtxSwitch bool
}

// DecodeStats reports capture-quality information alongside the events.
type DecodeStats struct {
	Records     int
	UnknownTags int
	// Overflowed propagates the card's overflow LED: the capture is the
	// head of the run, and the tail was lost.
	Overflowed bool
	Dropped    uint64
}

// Decode unwraps the truncated counter stamps into a monotonic timeline
// and resolves tags against the name/tag file. The card's counter is only
// meaningful as intervals; the timeline starts at zero on the first record.
// Events further apart than the counter's wrap interval (≈16.7 s on the
// prototype's 24-bit 1 MHz counter) alias, exactly as on the real
// hardware. The capture's clock configuration selects the tick period and
// mask, so upgraded cards (the paper's future-work higher-precision clock
// and wider RAM) decode transparently.
func Decode(c hw.Capture, tags *tagfile.File) ([]Event, DecodeStats) {
	stats := DecodeStats{Records: len(c.Records), Overflowed: c.Overflowed, Dropped: c.Dropped}
	events := make([]Event, 0, len(c.Records))
	cfg := c.ClockConfig()
	mask, tick := cfg.Mask(), cfg.TickPeriod()
	var now sim.Time
	var last uint32
	for i, r := range c.Records {
		if i > 0 {
			delta := (r.Stamp - last) & mask
			now += sim.Time(delta) * tick
		}
		last = r.Stamp
		e := Event{Time: now, Tag: r.Tag}
		entry, kind := tags.Resolve(r.Tag)
		switch kind {
		case tagfile.FunctionEntry:
			e.Kind, e.Name, e.CtxSwitch = Entry, entry.Name, entry.ContextSwitch
		case tagfile.FunctionExit:
			e.Kind, e.Name, e.CtxSwitch = Exit, entry.Name, entry.ContextSwitch
		case tagfile.InlineTag:
			e.Kind, e.Name = Inline, entry.Name
		default:
			e.Kind = Unknown
			stats.UnknownTags++
		}
		events = append(events, e)
	}
	return events, stats
}
