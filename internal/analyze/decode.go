// Package analyze is the host-side analysis software: it decodes the raw
// (tag, timestamp) list retrieved from the Profiler's RAM, reconstructs
// nested code paths — splitting per-process paths at the context-switch
// function marked '!' in the name/tag file and treating in-swtch time as
// idle except for interrupts — and produces the paper's two reports: the
// per-function summary (Figure 3) and the real-time code-path trace
// (Figure 4), plus histograms, subsystem grouping and the what-if
// estimators used in the network study.
package analyze

import (
	"kprof/internal/hw"
	"kprof/internal/sim"
	"kprof/internal/tagfile"
)

// EventKind classifies a decoded event.
type EventKind int

// Event kinds: even tags are function entries, odd tags exits, '='-marked
// tags inline marks; tags absent from the name/tag file decode as Unknown.
const (
	Entry EventKind = iota
	Exit
	Inline
	Unknown
)

// String names the kind for reports and errors.
func (k EventKind) String() string {
	switch k {
	case Entry:
		return "entry"
	case Exit:
		return "exit"
	case Inline:
		return "inline"
	}
	return "unknown"
}

// Event is one decoded capture record on the reconstructed timeline.
type Event struct {
	Time sim.Time // unwrapped, relative to the first record
	Kind EventKind
	Name string
	Tag  uint16
	// CtxSwitch marks events of the '!' function (swtch).
	CtxSwitch bool
}

// DecodeStats reports capture-quality information alongside the events.
type DecodeStats struct {
	Records     int
	UnknownTags int
	// Overflowed propagates the card's overflow LED: the capture is the
	// head of the run, and the tail was lost.
	Overflowed bool
	Dropped    uint64
}

// Decoder incrementally unwraps the truncated counter stamps into a
// monotonic timeline and resolves tags against the name/tag file. The
// card's counter is only meaningful as intervals; the timeline starts at
// zero on the first record. Events further apart than the counter's wrap
// interval (≈16.7 s on the prototype's 24-bit 1 MHz counter) alias,
// exactly as on the real hardware. The clock configuration selects the
// tick period and mask, so upgraded cards (the paper's future-work
// higher-precision clock and wider RAM) decode transparently.
//
// Feeding records one at a time keeps the decode O(1) in memory: the
// sweep engine streams a card's RAM straight into the reconstructor
// without ever materializing the event list.
type Decoder struct {
	tags *tagfile.File
	mask uint32
	tick sim.Time

	now   sim.Time
	last  uint32
	first bool

	records     int
	unknownTags int
}

// NewDecoder returns a decoder for records captured under the given clock
// configuration (zero values select the prototype card's 1 MHz, 24 bits).
func NewDecoder(cfg hw.Config, tags *tagfile.File) *Decoder {
	cfg = cfg.WithDefaults()
	return &Decoder{tags: tags, mask: cfg.Mask(), tick: cfg.TickPeriod(), first: true}
}

// Next decodes one record. The unwrap is a modular difference against the
// previous stamp, so decoded time never moves backwards regardless of the
// raw stamp values (the out-of-order guard: a stamp that appears to regress
// reads as a near-wrap forward interval, as on the real counter).
func (d *Decoder) Next(r hw.Record) Event {
	if !d.first {
		delta := (r.Stamp - d.last) & d.mask
		d.now += sim.Time(delta) * d.tick
	}
	d.first = false
	d.last = r.Stamp
	d.records++
	e := Event{Time: d.now, Tag: r.Tag}
	entry, kind := d.tags.Resolve(r.Tag)
	switch kind {
	case tagfile.FunctionEntry:
		e.Kind, e.Name, e.CtxSwitch = Entry, entry.Name, entry.ContextSwitch
	case tagfile.FunctionExit:
		e.Kind, e.Name, e.CtxSwitch = Exit, entry.Name, entry.ContextSwitch
	case tagfile.InlineTag:
		e.Kind, e.Name = Inline, entry.Name
	default:
		e.Kind = Unknown
		d.unknownTags++
	}
	return e
}

// Stats reports what the decoder has seen so far. Overflowed and Dropped
// describe the card, not the decode, so the caller fills them in.
func (d *Decoder) Stats() DecodeStats {
	return DecodeStats{Records: d.records, UnknownTags: d.unknownTags}
}

// Decode unwraps a whole capture at once (see Decoder for the streaming
// path) and resolves tags against the name/tag file.
func Decode(c hw.Capture, tags *tagfile.File) ([]Event, DecodeStats) {
	d := NewDecoder(c.ClockConfig(), tags)
	events := make([]Event, 0, len(c.Records))
	for _, r := range c.Records {
		events = append(events, d.Next(r))
	}
	stats := d.Stats()
	stats.Overflowed = c.Overflowed
	stats.Dropped = c.Dropped
	return events, stats
}
