package analyze

import (
	"fmt"
	"io"
	"strings"

	"kprof/internal/sim"
)

// errWriter passes writes through to w until one fails, then swallows
// the rest and remembers the first error — so report renderers can stay
// straight-line sequences of Fprintfs and still report a full disk or a
// closed pipe instead of pretending success.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	if err != nil {
		ew.err = err
	}
	return n, err
}

// WriteSummary renders the per-function summary in the paper's Figure 3
// format: an overall header (elapsed, accumulated run time, idle time),
// then one line per function sorted by net CPU usage — elapsed, net,
// number of calls, (max/avg/min), % real, % net, name.
func (a *Analysis) WriteSummary(w io.Writer, top int) error {
	ew := &errWriter{w: w}
	elapsed := a.Elapsed()
	run := a.RunTime()
	var runPct, idlePct float64
	if elapsed > 0 {
		runPct = 100 * float64(run) / float64(elapsed)
		idlePct = 100 * float64(a.Idle) / float64(elapsed)
	}
	fmt.Fprintf(ew, "Elapsed time = %d sec %d us (%d tags)\n",
		elapsed/sim.Second, (elapsed%sim.Second)/sim.Microsecond, a.Stats.Records)
	fmt.Fprintf(ew, "Accumulated run time = %d sec %d us (%5.2f%%)\n",
		run/sim.Second, (run%sim.Second)/sim.Microsecond, runPct)
	fmt.Fprintf(ew, "Idle time = %d sec %d us (%5.2f%%)\n",
		a.Idle/sim.Second, (a.Idle%sim.Second)/sim.Microsecond, idlePct)
	// The corruption line appears only when the decoder found damage, so
	// clean captures render byte-identically to the unhardened pipeline.
	if a.Stats.CorruptRecords > 0 {
		fmt.Fprintf(ew, "Corrupt records = %d (%d timestamps repaired, %d resyncs)\n",
			a.Stats.CorruptRecords, a.Stats.RepairedTimestamps, a.Stats.Resyncs)
	}
	fmt.Fprintln(ew, strings.Repeat("-", 72))
	fmt.Fprintf(ew, "%9s %9s %8s %18s %8s %8s   %s\n",
		"Elapsed", "Net", "# calls", "(max/avg/min)", "% real", "% net", "")
	stats := a.Functions()
	if top > 0 && len(stats) > top {
		stats = stats[:top]
	}
	for _, s := range stats {
		if s.CtxSwitch {
			continue // idle is reported in the header
		}
		var pctReal, pctNet float64
		if elapsed > 0 {
			pctReal = 100 * float64(s.Net) / float64(elapsed)
		}
		if run > 0 {
			pctNet = 100 * float64(s.Net) / float64(run)
		}
		fmt.Fprintf(ew, "%9d %9d %8d %18s %7.2f%% %7.2f%%   %s\n",
			s.Elapsed.Micros(), s.Net.Micros(), s.Calls,
			fmt.Sprintf("(%d/%d/%d)", s.Max.Micros(), s.Avg().Micros(), s.MinOrZero().Micros()),
			pctReal, pctNet, s.Name)
	}
	return ew.err
}

// SummaryString renders the summary to a string.
func (a *Analysis) SummaryString(top int) string {
	var b strings.Builder
	_ = a.WriteSummary(&b, top)
	return b.String()
}

// WriteSegments renders the drain-segment summary of a stitched capture:
// one line per readout with its record count, end-boundary time, and, for
// lossy boundaries, the strobes dropped and frames force-closed there.
// Every loss the card suffered is on this table — nothing is lost
// silently. The column vocabulary ("dropped" strobes, "force-closed"
// frames) matches the JSON report's dropped_strobes / force_closed_frames
// fields; see DESIGN.md's schema section.
func (a *Analysis) WriteSegments(w io.Writer) error {
	ew := &errWriter{w: w}
	if len(a.Segments) == 0 {
		fmt.Fprintln(ew, "single capture (no drain segments)")
		return ew.err
	}
	var records, forced, corrupt int
	var dropped uint64
	for _, s := range a.Segments {
		records += s.Records
		dropped += s.Dropped
		forced += s.ForceClosed
		corrupt += s.Corrupt
	}
	fmt.Fprintf(ew, "Drained %d segments: %d records, %d strobes dropped, %d frames force-closed\n",
		len(a.Segments), records, dropped, forced)
	// The corrupt column is appended only for damaged captures, so clean
	// segment tables stay byte-identical to the unhardened pipeline's.
	if corrupt > 0 {
		fmt.Fprintf(ew, "%5s %9s %10s %9s %13s %8s\n", "seg", "records", "end us", "dropped", "force-closed", "corrupt")
	} else {
		fmt.Fprintf(ew, "%5s %9s %10s %9s %13s\n", "seg", "records", "end us", "dropped", "force-closed")
	}
	for _, s := range a.Segments {
		mark := ""
		if s.Overflowed {
			mark = "  overflow LED"
		}
		if corrupt > 0 {
			fmt.Fprintf(ew, "%5d %9d %10d %9d %13d %8d%s\n",
				s.Index, s.Records, s.End.Micros(), s.Dropped, s.ForceClosed, s.Corrupt, mark)
		} else {
			fmt.Fprintf(ew, "%5d %9d %10d %9d %13d%s\n",
				s.Index, s.Records, s.End.Micros(), s.Dropped, s.ForceClosed, mark)
		}
	}
	return ew.err
}

// SegmentsString renders the segment summary to a string.
func (a *Analysis) SegmentsString() string {
	var b strings.Builder
	_ = a.WriteSegments(&b)
	return b.String()
}

// TraceOptions controls the code-path trace rendering.
type TraceOptions struct {
	// From/To bound the rendered window; zero To means the whole capture.
	From, To sim.Time
	// MaxLines bounds output; 0 means unlimited.
	MaxLines int
}

// WriteTrace renders the real-time code-path trace in the paper's Figure 4
// format: a timestamp, nesting by call depth, "-> name (net us, total us)"
// on entries (total omitted for leaves), bare "<-" on exits (annotated for
// frames whose entry line was outside the window), '==' inline marks, and
// context-switch flags.
func (a *Analysis) WriteTrace(w io.Writer, opts TraceOptions) error {
	ew := &errWriter{w: w}
	to := opts.To
	if to == 0 {
		to = a.End + 1
	}
	lines := 0
	for _, it := range a.Items {
		if it.Time < opts.From || it.Time > to {
			continue
		}
		if opts.MaxLines > 0 && lines >= opts.MaxLines {
			fmt.Fprintf(ew, "... (truncated at %d lines)\n", opts.MaxLines)
			break
		}
		indent := strings.Repeat("    ", it.Depth)
		switch it.Kind {
		case TraceEnter:
			n := it.Node
			if len(n.Children) == 0 && len(n.Marks) == 0 {
				fmt.Fprintf(ew, "%s %s-> %s (%d us)\n", it.Time, indent, n.Name, n.Net().Micros())
			} else {
				fmt.Fprintf(ew, "%s %s-> %s (%d us, %d total)\n",
					it.Time, indent, n.Name, n.Net().Micros(), n.Elapsed().Micros())
			}
		case TraceExit:
			n := it.Node
			// Exits are annotated when the matching entry is far away
			// (after a context switch), as Figure 4's "<- tsleep".
			if n.Start < opts.From || n.outOfContext > 0 {
				fmt.Fprintf(ew, "%s %s<- %s (%d us, %d total)\n",
					it.Time, indent, n.Name, n.Net().Micros(), n.Elapsed().Micros())
			} else {
				fmt.Fprintf(ew, "%s %s<-\n", it.Time, indent)
			}
		case TraceInline:
			fmt.Fprintf(ew, "%s %s== %s\n", it.Time, indent, it.Mark)
		case TraceSwitchOut:
			fmt.Fprintf(ew, "%s -> swtch ---- Context switch out ----\n", it.Time)
		case TraceSwitchIn:
			fmt.Fprintf(ew, "%s <- ---- Context switch in ----\n", it.Time)
		}
		lines++
	}
	return ew.err
}

// TraceString renders the trace to a string.
func (a *Analysis) TraceString(opts TraceOptions) string {
	var b strings.Builder
	_ = a.WriteTrace(&b, opts)
	return b.String()
}
