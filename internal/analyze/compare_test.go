package analyze

import (
	"strings"
	"testing"
)

func TestCompareFindsTheMover(t *testing.T) {
	// Before: a dominates. After: a shrank, b grew.
	before := analyzeCap(t, capOf(
		[2]uint32{500, 0}, [2]uint32{501, 90},
		[2]uint32{502, 90}, [2]uint32{503, 100},
	))
	after := analyzeCap(t, capOf(
		[2]uint32{500, 0}, [2]uint32{501, 20},
		[2]uint32{502, 20}, [2]uint32{503, 100},
	))
	c := Compare(before, after)
	if len(c.Deltas) < 2 {
		t.Fatalf("deltas = %+v", c.Deltas)
	}
	// The biggest movers are a (0.9 -> 0.2) and b (0.1 -> 0.8).
	if c.Deltas[0].Name != "a" && c.Deltas[0].Name != "b" {
		t.Fatalf("top mover = %s", c.Deltas[0].Name)
	}
	var aDelta Delta
	for _, d := range c.Deltas {
		if d.Name == "a" {
			aDelta = d
		}
	}
	if aDelta.ShareChange() > -0.6 {
		t.Fatalf("a's change = %+.2f, want big negative", aDelta.ShareChange())
	}
	out := c.String()
	if !strings.Contains(out, "idle:") || !strings.Contains(out, "a") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestCompareHandlesAppearingAndVanishingFunctions(t *testing.T) {
	before := analyzeCap(t, capOf([2]uint32{500, 0}, [2]uint32{501, 50}))
	after := analyzeCap(t, capOf([2]uint32{502, 0}, [2]uint32{503, 50}))
	c := Compare(before, after)
	var sawA, sawB bool
	for _, d := range c.Deltas {
		if d.Name == "a" {
			sawA = true
			if d.AfterShare != 0 || d.BeforeShare == 0 {
				t.Fatalf("vanished a = %+v", d)
			}
			if !d.Removed || d.Added {
				t.Fatalf("vanished a not marked Removed: %+v", d)
			}
		}
		if d.Name == "b" {
			sawB = true
			if d.BeforeShare != 0 || d.AfterShare == 0 {
				t.Fatalf("appeared b = %+v", d)
			}
			if !d.Added || d.Removed {
				t.Fatalf("appeared b not marked Added: %+v", d)
			}
		}
	}
	if !sawA || !sawB {
		t.Fatalf("deltas missing functions: %+v", c.Deltas)
	}
	// The report must say so, not print a 0.00% indistinguishable from
	// "measured at zero".
	out := c.String()
	if !strings.Contains(out, "+new") || !strings.Contains(out, "gone") {
		t.Fatalf("added/removed not marked in render:\n%s", out)
	}
}

func TestCompareWriteFiltersNoMovementBeforeTop(t *testing.T) {
	// Hand-build a comparison where a crowd of no-movement rows would,
	// under truncate-then-filter, push the one real mover out of a short
	// report.
	c := &Comparison{}
	for _, name := range []string{"idlezero1", "idlezero2", "idlezero3"} {
		c.Deltas = append(c.Deltas, Delta{
			Name:        name,
			BeforeShare: 0.10, AfterShare: 0.10,
			BeforeCalls: 7, AfterCalls: 7,
		})
	}
	c.Deltas = append(c.Deltas, Delta{
		Name:        "mover",
		BeforeShare: 0.10, AfterShare: 0.1000001,
		BeforeCalls: 7, AfterCalls: 8,
	})
	var b strings.Builder
	if err := c.Write(&b, 2); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "mover") {
		t.Fatalf("no-movement rows crowded out the mover:\n%s", out)
	}
	if strings.Contains(out, "idlezero") {
		t.Fatalf("no-movement row rendered:\n%s", out)
	}
}

func TestCompareEmpty(t *testing.T) {
	c := Compare(analyzeCap(t, capOf()), analyzeCap(t, capOf()))
	if len(c.Deltas) != 0 {
		t.Fatalf("deltas = %+v", c.Deltas)
	}
	if c.String() == "" {
		t.Fatal("empty render")
	}
}
