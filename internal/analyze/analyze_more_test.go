package analyze

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"kprof/internal/hw"
	"kprof/internal/sim"
)

func TestTimeline(t *testing.T) {
	// a (net 70) then, after idle, c (net 20) at the far end.
	a := analyzeCap(t, capOf(
		[2]uint32{500, 0}, [2]uint32{502, 10}, [2]uint32{503, 40}, [2]uint32{501, 100},
		[2]uint32{600, 110}, [2]uint32{601, 900},
		[2]uint32{504, 910}, [2]uint32{505, 930},
	))
	tl := a.Timeline(map[string]string{"a": "net", "b": "net", "c": "fs"}, 10)
	if len(tl.Groups) != 2 {
		t.Fatalf("groups = %v", tl.Groups)
	}
	if tl.Groups[0] != "net" {
		t.Fatalf("dominant group = %s", tl.Groups[0])
	}
	out := tl.String()
	if !strings.Contains(out, "net") || !strings.Contains(out, "fs") {
		t.Fatalf("render:\n%s", out)
	}
	// The fs row's activity is in the last cells, net's in the first.
	netRow := tl.Cells["net"]
	fsRow := tl.Cells["fs"]
	if netRow[0] == 0 || fsRow[len(fsRow)-1] == 0 {
		t.Fatalf("activity misplaced: net=%v fs=%v", netRow, fsRow)
	}
	if fsRow[0] != 0 {
		t.Fatal("fs activity leaked to the start")
	}
}

func TestTimelineEmptyCapture(t *testing.T) {
	a := analyzeCap(t, hw.Capture{})
	tl := a.Timeline(nil, 10)
	if !strings.Contains(tl.String(), "empty") {
		t.Fatalf("render: %s", tl)
	}
}

// Conservation: on a clean balanced capture, per-function net times plus
// idle account for the whole elapsed span.
func TestTimeConservation(t *testing.T) {
	a := analyzeCap(t, capOf(
		[2]uint32{500, 0}, [2]uint32{502, 10}, [2]uint32{503, 30},
		[2]uint32{504, 35}, [2]uint32{505, 55}, [2]uint32{501, 60},
		[2]uint32{600, 70}, [2]uint32{601, 95},
		[2]uint32{504, 100}, [2]uint32{505, 130},
	))
	var nets sim.Time
	for _, s := range a.Functions() {
		nets += s.Net
	}
	// Gaps between top-level frames (60..70 pre-swtch, 95..100 pending)
	// are unattributed CPU; everything else must balance.
	unattributed := (70-60)*sim.Microsecond + (100-95)*sim.Microsecond
	if nets+a.Idle+unattributed != a.Elapsed() {
		t.Fatalf("nets=%v idle=%v unattributed=%v elapsed=%v",
			nets, a.Idle, unattributed, a.Elapsed())
	}
}

// Robustness: arbitrary garbage captures never panic the analyzer and
// always yield sane aggregates.
func TestAnalyzerRobustnessProperty(t *testing.T) {
	tags := mustTags(t)
	prop := func(raw []uint32) bool {
		var c hw.Capture
		for i := 0; i+1 < len(raw); i += 2 {
			c.Records = append(c.Records, hw.Record{
				Tag:   uint16(raw[i] % 1100), // hits entries, exits, inlines, unknowns
				Stamp: raw[i+1] & hw.TimerMask,
			})
		}
		events, stats := Decode(c, tags)
		a := Reconstruct(events, stats)
		if a.Idle < 0 || a.Elapsed() < 0 {
			return false
		}
		if a.Idle > a.Elapsed() {
			return false
		}
		for _, s := range a.Functions() {
			if s.Calls < 0 || s.Elapsed < 0 {
				return false
			}
		}
		// The reports render without panicking.
		_ = a.SummaryString(5)
		_ = a.TraceString(TraceOptions{MaxLines: 20})
		_ = a.Timeline(nil, 8)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Decode honours the capture's clock configuration (the future-work
// higher-precision card).
func TestDecodeHighPrecisionClock(t *testing.T) {
	c := hw.Capture{
		Records:   []hw.Record{{Tag: 500, Stamp: 0}, {Tag: 501, Stamp: 4}},
		ClockHz:   4_000_000,
		TimerBits: 26,
	}
	events, _ := Decode(c, mustTags(t))
	if events[1].Time != sim.Microsecond {
		t.Fatalf("4 ticks at 4 MHz = %v, want 1 µs", events[1].Time)
	}
	// Wrap at 26 bits.
	c2 := hw.Capture{
		Records:   []hw.Record{{Tag: 500, Stamp: 1<<26 - 1}, {Tag: 501, Stamp: 3}},
		ClockHz:   4_000_000,
		TimerBits: 26,
	}
	events2, _ := Decode(c2, mustTags(t))
	if events2[1].Time != sim.Microsecond {
		t.Fatalf("wrapped delta = %v, want 1 µs", events2[1].Time)
	}
}

// A sub-microsecond-resolution capture distinguishes calls the prototype
// card cannot.
func TestHighPrecisionSeparatesShortCalls(t *testing.T) {
	s := sim.NewScheduler()
	proto := hw.New(16, s.Now)
	fast := hw.NewWithConfig(hw.Config{Depth: 16, ClockHz: 10_000_000}, s.Now)
	proto.Arm()
	fast.Arm()
	latchBoth := func(tag uint16) { proto.Latch(tag); fast.Latch(tag) }
	s.AdvanceTo(sim.Microsecond)
	latchBoth(502) // b entry
	s.AdvanceTo(sim.Microsecond + 400*sim.Nanosecond)
	latchBoth(503) // b exit, 400 ns later
	tags := mustTags(t)

	ep, _ := Decode(proto.Dump(), tags)
	ef, _ := Decode(fast.Dump(), tags)
	ap, af := Reconstruct(ep, DecodeStats{}), Reconstruct(ef, DecodeStats{})
	bp, _ := ap.Fn("b")
	bf, _ := af.Fn("b")
	if bp.Net != 0 {
		t.Fatalf("prototype saw %v for a 400 ns call", bp.Net)
	}
	if bf.Net != 400*sim.Nanosecond {
		t.Fatalf("10 MHz card saw %v, want 400 ns", bf.Net)
	}
}

func TestJSONExport(t *testing.T) {
	a := analyzeCap(t, capOf(
		[2]uint32{500, 0}, [2]uint32{502, 10}, [2]uint32{503, 30}, [2]uint32{501, 100},
	))
	var buf strings.Builder
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var r JSONReport
	if err := json.Unmarshal([]byte(buf.String()), &r); err != nil {
		t.Fatal(err)
	}
	if r.ElapsedUS != 100 || r.Records != 4 {
		t.Fatalf("report header = %+v", r)
	}
	if len(r.Functions) != 2 {
		t.Fatalf("functions = %d", len(r.Functions))
	}
	// Sorted by net: a first.
	if r.Functions[0].Name != "a" || r.Functions[0].NetUS != 80 {
		t.Fatalf("first fn = %+v", r.Functions[0])
	}
	if r.Functions[1].Name != "b" || r.Functions[1].AvgUS != 20 {
		t.Fatalf("second fn = %+v", r.Functions[1])
	}
}
