package analyze

import (
	"strings"
	"testing"

	"kprof/internal/sim"
)

func TestCallGraphArcs(t *testing.T) {
	// a { b { c } b } ; c (top-level)
	a := analyzeCap(t, capOf(
		[2]uint32{500, 0},
		[2]uint32{502, 10}, [2]uint32{504, 20}, [2]uint32{505, 30}, [2]uint32{503, 40},
		[2]uint32{502, 50}, [2]uint32{503, 70},
		[2]uint32{501, 100},
		[2]uint32{504, 110}, [2]uint32{505, 130},
	))
	g := a.CallGraph()

	ab := g.Callees("a")
	if len(ab) != 1 || ab[0].Callee != "b" || ab[0].Count != 2 {
		t.Fatalf("a's callees = %+v", ab)
	}
	if ab[0].Time != 50*sim.Microsecond {
		t.Fatalf("a->b time = %v, want 30+20", ab[0].Time)
	}
	// c is called from b (once) and from the top (once).
	cCallers := g.Callers("c")
	if len(cCallers) != 2 {
		t.Fatalf("c's callers = %+v", cCallers)
	}
	names := []string{cCallers[0].Caller, cCallers[1].Caller}
	if names[0] != "b" && names[1] != "b" {
		t.Fatalf("c callers = %v, want b among them", names)
	}
	foundTop := false
	for _, arc := range cCallers {
		if arc.Caller == "" {
			foundTop = true
			if arc.Time != 20*sim.Microsecond {
				t.Fatalf("top->c time = %v", arc.Time)
			}
		}
	}
	if !foundTop {
		t.Fatal("top-level call to c missing")
	}
}

func TestCallGraphRender(t *testing.T) {
	a := analyzeCap(t, capOf(
		[2]uint32{500, 0}, [2]uint32{502, 10}, [2]uint32{503, 30}, [2]uint32{501, 100},
	))
	g := a.CallGraph()
	out := g.String()
	if !strings.Contains(out, "<top>") || !strings.Contains(out, "b") {
		t.Fatalf("render:\n%s", out)
	}
	var b strings.Builder
	if err := g.WriteFunction(&b, "b"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "[b]") || !strings.Contains(b.String(), "from a") {
		t.Fatalf("function block:\n%s", b.String())
	}
	var empty strings.Builder
	g.WriteFunction(&empty, "nosuch")
	if !strings.Contains(empty.String(), "no arcs") {
		t.Fatalf("missing-function block: %q", empty.String())
	}
}

func TestCallGraphArcOrdering(t *testing.T) {
	// Two callees with different weights: heavier first.
	a := analyzeCap(t, capOf(
		[2]uint32{500, 0},
		[2]uint32{502, 10}, [2]uint32{503, 20}, // b: 10
		[2]uint32{504, 30}, [2]uint32{505, 90}, // c: 60
		[2]uint32{501, 100},
	))
	g := a.CallGraph()
	arcs := g.Callees("a")
	if len(arcs) != 2 || arcs[0].Callee != "c" {
		t.Fatalf("ordering: %+v", arcs)
	}
}
