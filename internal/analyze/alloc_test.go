package analyze

import (
	"testing"
)

// The lean streaming path (a sweep worker: events and trace discarded)
// must reach a steady state where pushing records allocates nothing —
// nodes come from the pool, stacks recycle, and the function table stops
// growing. This is the claim the decode/steady benchmark gates; here it
// is exact, not statistical.
func TestSteadyStatePushZeroAlloc(t *testing.T) {
	tags := mustTags(t)
	c := pseudoCapture(3, 4096)
	rc := NewReconstructor(c.ClockConfig(), tags, ReconstructOptions{
		DiscardEvents: true,
		DiscardTrace:  true,
		Repair:        DefaultRepair(),
	})
	pass := func() {
		for _, r := range c.Records {
			rc.Push(r)
		}
	}
	// Warm every pool and table to its limit cycle.
	for i := 0; i < 3; i++ {
		pass()
	}
	if avg := testing.AllocsPerRun(10, pass); avg != 0 {
		t.Errorf("steady-state Push allocates: %.2f allocs per 4096-record pass", avg)
	}
}
