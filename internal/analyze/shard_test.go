package analyze

import (
	"fmt"
	"testing"

	"kprof/internal/hw"
)

// serialLean runs the serial lean reconstruction over one capture.
func serialLean(t *testing.T, c hw.Capture, opts ReconstructOptions) *Analysis {
	t.Helper()
	opts.DiscardEvents, opts.DiscardTrace = true, true
	rc := NewReconstructor(c.ClockConfig(), mustTags(t), opts)
	rc.PushBatch(c.Records)
	return rc.Finish(c.Overflowed, c.Dropped)
}

// shardedLean runs the sharded reconstruction with the given worker count.
func shardedLean(t *testing.T, c hw.Capture, opts ReconstructOptions, workers int) *Analysis {
	t.Helper()
	sr := NewShardedReconstructor(c.ClockConfig(), mustTags(t), opts, workers)
	sr.PushBatch(c.Records)
	return sr.Finish(c.Overflowed, c.Dropped)
}

// requireIdentical fails unless the two analyses agree on every quantity the
// lean path retains — the accounting header, the capture-quality stats, the
// segment table, the full per-function statistics, and the rendered report
// byte for byte.
func requireIdentical(t *testing.T, label string, got, want *Analysis) {
	t.Helper()
	if got.Start != want.Start || got.End != want.End || got.Idle != want.Idle ||
		got.Switches != want.Switches || got.OrphanExits != want.OrphanExits ||
		got.Recovered != want.Recovered {
		t.Fatalf("%s: accounting differs:\n got Start=%v End=%v Idle=%v Sw=%d Orphan=%d Rec=%d\nwant Start=%v End=%v Idle=%v Sw=%d Orphan=%d Rec=%d",
			label, got.Start, got.End, got.Idle, got.Switches, got.OrphanExits, got.Recovered,
			want.Start, want.End, want.Idle, want.Switches, want.OrphanExits, want.Recovered)
	}
	if got.Stats != want.Stats {
		t.Fatalf("%s: stats %+v != %+v", label, got.Stats, want.Stats)
	}
	if len(got.Segments) != len(want.Segments) {
		t.Fatalf("%s: %d segments, want %d", label, len(got.Segments), len(want.Segments))
	}
	for i := range got.Segments {
		if got.Segments[i] != want.Segments[i] {
			t.Fatalf("%s: segment %d %+v != %+v", label, i, got.Segments[i], want.Segments[i])
		}
	}
	gf, wf := got.Functions(), want.Functions()
	if len(gf) != len(wf) {
		t.Fatalf("%s: %d functions, want %d", label, len(gf), len(wf))
	}
	for i := range gf {
		if *gf[i] != *wf[i] {
			t.Fatalf("%s: fn %s: %+v != %+v", label, wf[i].Name, *gf[i], *wf[i])
		}
	}
	if g, w := got.SummaryString(0), want.SummaryString(0); g != w {
		t.Fatalf("%s: summary differs\n--- sharded ---\n%s--- serial ---\n%s", label, g, w)
	}
}

// The sharded reconstructor must produce bit-identical lean analyses to the
// serial path whatever the worker count — the determinism contract that
// lets GOMAXPROCS>1 speed a capture up without perturbing the goldens.
func TestShardedMatchesSerial(t *testing.T) {
	for _, seed := range []uint64{1, 2, 7, 42, 77, 123} {
		c := pseudoCapture(seed, 4000)
		for _, opts := range []ReconstructOptions{{}, {Repair: DefaultRepair()}} {
			want := serialLean(t, c, opts)
			for _, workers := range []int{1, 2, 4, 8} {
				label := fmt.Sprintf("seed %d repair=%v workers %d", seed, opts.Repair.Enabled, workers)
				requireIdentical(t, label, shardedLean(t, c, opts, workers), want)
			}
		}
	}
}

// Hand-built adoption shapes (the Figure 4 resume, FIFO adoption across
// two processes sleeping in the same function) pin the cross-context
// decisions the router must make identically to serial.
func TestShardedAdoptionShapes(t *testing.T) {
	captures := []hw.Capture{
		// Figure 4: tentative frames spliced into the adopted stack.
		capOf(
			[2]uint32{500, 0}, [2]uint32{502, 10}, [2]uint32{600, 20},
			[2]uint32{601, 60}, [2]uint32{504, 65}, [2]uint32{505, 75},
			[2]uint32{503, 90}, [2]uint32{501, 100},
		),
		// Two suspended processes in the same function: FIFO adoption.
		capOf(
			[2]uint32{500, 0}, [2]uint32{600, 10},
			[2]uint32{601, 20}, [2]uint32{500, 25}, [2]uint32{600, 35},
			[2]uint32{601, 50}, [2]uint32{501, 60},
			[2]uint32{600, 70}, [2]uint32{601, 80}, [2]uint32{501, 95},
		),
		// Unclosed tentative frames discarded at adoption; orphan exit with
		// no match anywhere; exit during idle.
		capOf(
			[2]uint32{500, 0}, [2]uint32{600, 5},
			[2]uint32{504, 10}, [2]uint32{505, 15}, // interrupt in idle
			[2]uint32{601, 20}, [2]uint32{502, 25}, // tentative b never closes
			[2]uint32{501, 40},                     // orphan a exit: adopts
			[2]uint32{507, 50},                     // exit with no frame: orphan
			[2]uint32{600, 60}, [2]uint32{505, 70}, // exit in idle, no frame
		),
	}
	for ci, c := range captures {
		want := serialLean(t, c, ReconstructOptions{})
		for _, workers := range []int{1, 3} {
			requireIdentical(t, fmt.Sprintf("capture %d workers %d", ci, workers),
				shardedLean(t, c, ReconstructOptions{}, workers), want)
		}
	}
}

// A segmented capture with lossy boundaries: the force-close at each loss
// must land identically (segment table included) through the sharded path.
func TestShardedSegmentedMatchesSerial(t *testing.T) {
	whole := pseudoCapture(9, 3000)
	cuts := []int{0, 700, 1400, 2100, 3000}
	dropped := []uint64{0, 12, 0, 5}

	feed := func(push func([]hw.Record), end func(uint64, bool)) {
		for s := 0; s+1 < len(cuts); s++ {
			push(whole.Records[cuts[s]:cuts[s+1]])
			end(dropped[s], s == 1)
		}
	}

	rc := NewReconstructor(whole.ClockConfig(), mustTags(t), ReconstructOptions{DiscardEvents: true, DiscardTrace: true, Repair: DefaultRepair()})
	feed(rc.PushBatch, rc.EndSegment)
	want := rc.Finish(false, 0)

	for _, workers := range []int{1, 2, 4} {
		sr := NewShardedReconstructor(whole.ClockConfig(), mustTags(t), ReconstructOptions{Repair: DefaultRepair()}, workers)
		feed(sr.PushBatch, sr.EndSegment)
		requireIdentical(t, fmt.Sprintf("segmented workers %d", workers), sr.Finish(false, 0), want)
	}
}

// Record-at-a-time pushes must land identically to batch pushes.
func TestShardedPushMatchesPushBatch(t *testing.T) {
	c := pseudoCapture(5, 1500)
	want := serialLean(t, c, ReconstructOptions{Repair: DefaultRepair()})
	sr := NewShardedReconstructor(c.ClockConfig(), mustTags(t), ReconstructOptions{Repair: DefaultRepair()}, 4)
	for _, r := range c.Records {
		sr.Push(r)
	}
	requireIdentical(t, "record-at-a-time", sr.Finish(c.Overflowed, c.Dropped), want)
}
