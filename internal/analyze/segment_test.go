package analyze

import (
	"strings"
	"testing"

	"kprof/internal/hw"
	"kprof/internal/sim"
	"kprof/internal/tagfile"
)

// Untimed calls (force-closed frames, orphan exits, frames open at capture
// end) count in Calls but not in TimedCalls, and never dilute the averages.
func TestTimedCallsExcludeUntimed(t *testing.T) {
	// a { b (b's exit lost) } a-exit: b is force-closed, untimed.
	a := analyzeCap(t, capOf(
		[2]uint32{500, 0}, [2]uint32{502, 10}, [2]uint32{501, 50},
	))
	sb, _ := a.Fn("b")
	if sb.Calls != 1 || sb.TimedCalls != 0 {
		t.Fatalf("b calls=%d timed=%d, want 1/0", sb.Calls, sb.TimedCalls)
	}
	if sb.Avg() != 0 || sb.AvgElapsed() != 0 {
		t.Fatalf("untimed call biased averages: avg=%v avgElapsed=%v", sb.Avg(), sb.AvgElapsed())
	}
	sa, _ := a.Fn("a")
	if sa.Calls != 1 || sa.TimedCalls != 1 {
		t.Fatalf("a calls=%d timed=%d, want 1/1", sa.Calls, sa.TimedCalls)
	}
	if sa.Avg() != sa.Net {
		t.Fatalf("a avg=%v, want net %v over one timed call", sa.Avg(), sa.Net)
	}

	// One complete call plus one frame still open at capture end: the
	// average reflects only the complete call.
	a = analyzeCap(t, capOf(
		[2]uint32{500, 0}, [2]uint32{501, 30}, [2]uint32{500, 40},
	))
	sa, _ = a.Fn("a")
	if sa.Calls != 2 || sa.TimedCalls != 1 {
		t.Fatalf("a calls=%d timed=%d, want 2/1", sa.Calls, sa.TimedCalls)
	}
	if sa.Avg() != 30*sim.Microsecond {
		t.Fatalf("a avg=%v, want 30 µs (open frame excluded)", sa.Avg())
	}
}

// A lost interrupt exit inside an idle window must not leave the frame open
// on the idle stack: switch-in force-closes it, so interrupts in later idle
// windows never nest under a stale frame.
func TestSwitchInForceClosesLostIdleInterrupt(t *testing.T) {
	a := analyzeCap(t, capOf(
		[2]uint32{500, 0},   // a enter
		[2]uint32{600, 10},  // swtch enter: idle window 1
		[2]uint32{506, 20},  // isaintr enter — exit LOST
		[2]uint32{601, 100}, // swtch exit: force-close isaintr here
		[2]uint32{600, 110}, // swtch enter: idle window 2
		[2]uint32{506, 120}, // isaintr enter
		[2]uint32{507, 160}, // isaintr exit — must close THIS frame
		[2]uint32{601, 200}, // swtch exit
		[2]uint32{501, 220}, // a exit (adopts the suspended stack)
	))
	if a.Recovered != 1 {
		t.Fatalf("recovered = %d, want 1 (the lost interrupt exit)", a.Recovered)
	}
	si, _ := a.Fn("isaintr")
	if si.Calls != 2 || si.TimedCalls != 1 {
		t.Fatalf("isaintr calls=%d timed=%d, want 2/1", si.Calls, si.TimedCalls)
	}
	// The second interrupt is a top-level idle frame, not a child of the
	// stale one: its 40 µs count and are deducted from the idle window.
	if si.Elapsed != 40*sim.Microsecond {
		t.Fatalf("isaintr elapsed = %v, want 40 µs", si.Elapsed)
	}
	// Window 1: 100-10 = 90 (the unclosed interrupt's time is unknowable).
	// Window 2: (200-110) - 40 = 50.
	if a.Idle != 140*sim.Microsecond {
		t.Fatalf("idle = %v, want 140 µs", a.Idle)
	}
	sa, _ := a.Fn("a")
	if sa.Elapsed != 30*sim.Microsecond {
		t.Fatalf("a elapsed = %v, want 30 µs in-context", sa.Elapsed)
	}
}

// The context switcher is whatever the tag file marks '!', not a function
// named "swtch": its stat carries CtxSwitch and reports skip it by flag.
func TestCtxSwitchFlagFollowsTagFile(t *testing.T) {
	tags, err := tagfile.ParseString("main/500\nresched/510!\n")
	if err != nil {
		t.Fatal(err)
	}
	c := capOf(
		[2]uint32{500, 0}, [2]uint32{510, 10},
		[2]uint32{511, 30}, [2]uint32{501, 50},
	)
	events, stats := Decode(c, tags)
	a := Reconstruct(events, stats)
	sw, ok := a.Fn("resched")
	if !ok || !sw.CtxSwitch {
		t.Fatalf("resched stat = %+v, ok=%v; want CtxSwitch", sw, ok)
	}
	if sw.Calls != 1 {
		t.Fatalf("resched calls = %d", sw.Calls)
	}
	if a.Idle != 20*sim.Microsecond {
		t.Fatalf("idle = %v", a.Idle)
	}
	sum := a.SummaryString(0)
	if strings.Contains(sum, "resched") {
		t.Fatalf("summary lists the switcher row:\n%s", sum)
	}
	if !strings.Contains(sum, "main") {
		t.Fatalf("summary lost the ordinary row:\n%s", sum)
	}
	sm, _ := a.Fn("main")
	if sm.CtxSwitch {
		t.Fatal("ordinary function flagged as switcher")
	}
}

// cleanSegments slices a capture into lossless segments at the given cut
// points.
func cleanSegments(c hw.Capture, cuts ...int) []hw.Capture {
	var segs []hw.Capture
	prev := 0
	for _, cut := range append(cuts, len(c.Records)) {
		seg := c
		seg.Records = c.Records[prev:cut]
		seg.Overflowed = false
		seg.Dropped = 0
		segs = append(segs, seg)
		prev = cut
	}
	return segs
}

// The split-anywhere property: a capture split at EVERY possible drain
// boundary reconstructs identically to the unsplit capture — clean
// boundaries are pure continuations, so drain timing can never change the
// analysis.
func TestStitchSplitAnywhereMatchesUnsplit(t *testing.T) {
	tags := mustTags(t)
	for _, seed := range []uint64{1, 77} {
		c := pseudoCapture(seed, 300)
		c.Overflowed = false
		c.Dropped = 0
		rc := NewReconstructor(c.ClockConfig(), tags, ReconstructOptions{})
		for _, r := range c.Records {
			rc.Push(r)
		}
		whole := rc.Finish(false, 0)
		wholeSum := whole.SummaryString(0)
		for cut := 0; cut <= len(c.Records); cut++ {
			split := Stitch(cleanSegments(c, cut), tags, ReconstructOptions{})
			if got := split.SummaryString(0); got != wholeSum {
				t.Fatalf("seed %d cut %d: summary differs\n--- split ---\n%s--- whole ---\n%s",
					seed, cut, got, wholeSum)
			}
			if split.Idle != whole.Idle || split.Switches != whole.Switches ||
				split.OrphanExits != whole.OrphanExits || split.Recovered != whole.Recovered {
				t.Fatalf("seed %d cut %d: accounting differs", seed, cut)
			}
			if split.Stats != whole.Stats {
				t.Fatalf("seed %d cut %d: stats %+v != %+v", seed, cut, split.Stats, whole.Stats)
			}
			if len(split.Segments) != 2 {
				t.Fatalf("seed %d cut %d: %d segments", seed, cut, len(split.Segments))
			}
			if split.Segments[0].Records != cut || split.Segments[1].Records != len(c.Records)-cut {
				t.Fatalf("seed %d cut %d: segment sizes %d/%d",
					seed, cut, split.Segments[0].Records, split.Segments[1].Records)
			}
		}
	}
}

// A lossy boundary force-closes every open frame, reports the count on the
// segment, and folds the dropped strobes into the capture-quality stats.
func TestStitchLossyBoundary(t *testing.T) {
	tags := mustTags(t)
	// Segment 1 ends with a and b open; 3 strobes were lost before the
	// drain. Segment 2 is a fresh balanced call.
	seg1 := capOf([2]uint32{500, 0}, [2]uint32{502, 10})
	seg1.Dropped = 3
	seg1.Overflowed = true
	seg2 := capOf([2]uint32{504, 100}, [2]uint32{505, 130})
	a := Stitch([]hw.Capture{seg1, seg2}, tags, ReconstructOptions{})
	if len(a.Segments) != 2 {
		t.Fatalf("%d segments", len(a.Segments))
	}
	if a.Segments[0].ForceClosed != 2 || a.Recovered != 2 {
		t.Fatalf("force-closed %d, recovered %d; want 2/2",
			a.Segments[0].ForceClosed, a.Recovered)
	}
	if a.Segments[0].Dropped != 3 || a.Stats.Dropped != 3 || !a.Stats.Overflowed {
		t.Fatalf("loss accounting: seg dropped=%d stats=%+v", a.Segments[0].Dropped, a.Stats)
	}
	if a.Segments[1].ForceClosed != 0 || a.Segments[1].Dropped != 0 {
		t.Fatalf("clean segment charged with loss: %+v", a.Segments[1])
	}
	// The frames spanning the boundary are untimed, and c is intact.
	for _, name := range []string{"a", "b"} {
		s, _ := a.Fn(name)
		if s.Calls != 1 || s.TimedCalls != 0 {
			t.Fatalf("%s calls=%d timed=%d, want 1/0", name, s.Calls, s.TimedCalls)
		}
	}
	sc, _ := a.Fn("c")
	if sc.TimedCalls != 1 || sc.Elapsed != 30*sim.Microsecond {
		t.Fatalf("c: %+v", sc)
	}
}

// EndSegment/Finish misuse panics rather than silently corrupting.
func TestSegmentAPIMisuse(t *testing.T) {
	rc := NewReconstructor(hw.Config{}, mustTags(t), ReconstructOptions{})
	rc.Finish(false, 0)
	for name, fn := range map[string]func(){
		"Push":       func() { rc.Push(hw.Record{}) },
		"EndSegment": func() { rc.EndSegment(0, false) },
		"Finish":     func() { rc.Finish(false, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s after Finish did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// FuzzSegmentBoundary drives the decoder/reconstructor segment-boundary
// state with arbitrary records and an arbitrary split point: a clean split
// must reconstruct identically to the unsplit capture, and a lossy split
// must keep the books consistent (records partitioned, drops folded,
// force-closes counted in Recovered) without panicking.
func FuzzSegmentBoundary(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 0, 0, 0, 0xf4, 0x01, 7, 0xff, 0xff, 0xff, 0xf5, 0x01})
	f.Add([]byte{3, 0x12, 0x34, 0x56, 0x58, 0x02, 0x11, 0x22, 0x33, 0x59, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		tags := mustTags(t)
		var c hw.Capture
		for i := 1; i+5 <= len(data); i += 5 {
			stamp := uint32(data[i]) | uint32(data[i+1])<<8 | uint32(data[i+2])<<16
			tag := uint16(data[i+3]) | uint16(data[i+4])<<8
			c.Records = append(c.Records, hw.Record{Tag: tag, Stamp: stamp & hw.TimerMask})
		}
		cut := 0
		if n := len(c.Records); n > 0 {
			cut = int(data[0]) % (n + 1)
		}

		rc := NewReconstructor(c.ClockConfig(), tags, ReconstructOptions{})
		for _, r := range c.Records {
			rc.Push(r)
		}
		whole := rc.Finish(false, 0)

		clean := Stitch(cleanSegments(c, cut), tags, ReconstructOptions{})
		if got, want := clean.SummaryString(0), whole.SummaryString(0); got != want {
			t.Fatalf("cut %d: clean split summary differs\n--- split ---\n%s--- whole ---\n%s", cut, got, want)
		}
		if clean.Recovered != whole.Recovered || clean.Idle != whole.Idle {
			t.Fatalf("cut %d: clean split accounting differs", cut)
		}

		// Lossy variant: the first segment drops one strobe at its end.
		segs := cleanSegments(c, cut)
		segs[0].Dropped = 1
		lossy := Stitch(segs, tags, ReconstructOptions{})
		if lossy.Stats.Dropped != 1 {
			t.Fatalf("lossy split folded %d dropped, want 1", lossy.Stats.Dropped)
		}
		total, forced := 0, 0
		for _, seg := range lossy.Segments {
			total += seg.Records
			forced += seg.ForceClosed
		}
		if total != len(c.Records) {
			t.Fatalf("segments hold %d records, capture %d", total, len(c.Records))
		}
		if lossy.Recovered < forced {
			t.Fatalf("Recovered=%d < force-closed=%d", lossy.Recovered, forced)
		}
	})
}
